package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
)

// ScalingResult is the outcome of one shard-scaling run: byte-exact
// traffic counters that must not depend on the shard count, plus the
// wall-clock time of the write phase (which should shrink as shards grow
// on a multi-core machine).
type ScalingResult struct {
	// Shards is the engine's stripe-group count; Workers its worker-pool
	// bound; Writers the number of concurrent writer goroutines driving
	// the array (one per shard, floored at 1, so requests to different
	// shards are always in flight together).
	Shards  int
	Workers int
	Writers int
	// Requests is the total single-chunk update requests issued.
	Requests int64
	// Elapsed is the wall-clock duration of the write phase.
	Elapsed time.Duration
	// ReadElapsed is the wall-clock duration of the read phase: after the
	// final commit one reader goroutine per shard reads every LBA back as
	// single-chunk requests. Every stripe is clean by then, so on a shared
	// engine each read takes the epoch-validated lock-free path and the
	// column measures read-side scaling with no lock contention at all.
	ReadElapsed time.Duration
	// SSDWriteBytes and LogWriteBytes are measured at the devices;
	// SSDReadBytes counts only the read phase's traffic (the surrounding
	// verification reads are excluded). EPLogStats are the engine's own
	// counters. Everything except Stats.Commits (one per shard per Commit
	// call) is shard-count independent for this workload.
	SSDWriteBytes int64
	SSDReadBytes  int64
	LogWriteBytes int64
	EPLogStats    core.Stats
	// LockWaitSeconds aggregates the per-shard flight recorders'
	// lock-wait histograms: total wall-clock seconds request and
	// committer goroutines spent blocked on shard locks. With one writer
	// per shard contention should be near zero; a large value flags a
	// scheduling problem the elapsed column alone cannot attribute.
	LockWaitSeconds float64
}

// Scaling drives one EPLog array with a writer goroutine per shard and
// returns traffic counters that are byte-identical for every shard count.
// The workload extends the Concurrency experiment's construction to
// sharding:
//
//   - every request is a single-chunk update, so it forms exactly one
//     k'=1 log stripe and lands wholly inside one shard — the elastic
//     groups cannot split at shard boundaries, which is what makes the
//     byte counters (including log traffic) shard-count independent;
//   - writer w owns the stripes congruent to w mod writers; with one
//     writer per shard that is exactly shard w's stripe set, so the
//     writers contend on no shard lock and the run measures pure
//     parallel request execution;
//   - device buffers, the stripe buffer, and CommitEvery are disabled,
//     and every shard's slice of the update headroom and log space is
//     sized so neither the guard band nor the log-pressure group-commit
//     trigger can fire mid-run — the only parity fold is the final
//     Commit, over the same dirty-stripe set in every schedule.
//
// After the final Commit a read phase reads every LBA back (one reader
// goroutine per shard, single-chunk requests, contents verified against
// the last write). Clean stripes plus a shared engine put every one of
// those reads on the epoch-validated lock-free path, so the phase
// measures the read side of the scaling story.
//
// Wall-clock time is the one number allowed to vary: with GOMAXPROCS
// cores available, S shards should approach an S-fold speedup of both
// phases until the core count saturates.
func Scaling(scale int64, shards, workers int) (*ScalingResult, error) {
	if scale < 1 {
		return nil, fmt.Errorf("experiments: scale must be >= 1, got %d", scale)
	}
	if shards < 1 {
		shards = 1
	}
	set := DefaultSetting()
	k, m := set.K, set.M
	nDevs := k + m
	stripes := max(int64(32), 2048/scale)
	lbas := stripes * int64(k)
	rounds := int64(2) // updates per LBA
	total := lbas * rounds

	// Headroom: each device holds at most one data slot per stripe, so a
	// run allocates at most rounds chunks per stripe per device; give every
	// shard's slice of the headroom room for its whole share plus slack so
	// the guard band (1 chunk per shard here) is unreachable.
	ns := int64(shards)
	devChunks := stripes + rounds*stripes + 16*ns + 64
	// Log space: one log chunk per request per log device, range-split
	// across shards. The background group commit fires when a shard's
	// slice is 3/4 full; doubling every slice keeps it below 1/2.
	logChunks := 2*total + 16*ns

	devs := make([]device.Dev, nDevs)
	counters := make([]*device.Counting, nDevs)
	for i := range devs {
		counters[i] = device.NewCounting(device.NewMem(devChunks, ChunkSize))
		devs[i] = counters[i]
	}
	logDevs := make([]device.Dev, m)
	logCnt := make([]*device.Counting, m)
	for i := range logDevs {
		logCnt[i] = device.NewCounting(device.NewMem(logChunks, ChunkSize))
		logDevs[i] = logCnt[i]
	}
	// A small sink wires up the per-shard flight recorders so the run can
	// report aggregate lock-wait; the trace ring just wraps. The metric
	// cost is identical for every configuration, so comparisons hold.
	sink := obs.NewSink(64)
	e, err := core.New(devs, logDevs, core.Config{
		Obs:               sink,
		K:                 k,
		Stripes:           stripes,
		CommitGuardChunks: 1, // explicit: the default (capacity/16) could fire mid-run
		Workers:           workers,
		Shards:            shards,
	})
	if err != nil {
		return nil, err
	}
	defer e.Close()

	writers := max(1, shards)
	start := time.Now() //eplog:wallclock measured throughput is the experiment's output
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, ChunkSize)
			for r := int64(0); r < rounds; r++ {
				// Writer w owns stripes congruent to w mod writers —
				// with writers == shards, exactly shard w's stripes.
				for s := int64(w); s < stripes; s += int64(writers) {
					for j := 0; j < k; j++ {
						lba := s*int64(k) + int64(j)
						for i := range buf {
							buf[i] = byte(lba + r*7 + int64(i))
						}
						if _, err := e.WriteChunks(0, lba, buf); err != nil {
							errs[w] = fmt.Errorf("writer %d lba %d: %w", w, lba, err)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start) //eplog:wallclock measured throughput is the experiment's output
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := e.Commit(); err != nil {
		return nil, err
	}

	// Read phase: every LBA back once, on now-clean stripes, with the same
	// reader-per-shard ownership as the write phase. Snapshot the device
	// read counters around the phase so Verify's reads below stay out of
	// SSDReadBytes.
	readBase := int64(0)
	for _, c := range counters {
		readBase += c.ReadBytes()
	}
	last := rounds - 1
	readStart := time.Now() //eplog:wallclock measured throughput is the experiment's output
	readErrs := make([]error, writers)
	var rg sync.WaitGroup
	for w := 0; w < writers; w++ {
		rg.Add(1)
		go func(w int) {
			defer rg.Done()
			buf := make([]byte, ChunkSize)
			for s := int64(w); s < stripes; s += int64(writers) {
				for j := 0; j < k; j++ {
					lba := s*int64(k) + int64(j)
					if _, err := e.ReadChunks(0, lba, buf); err != nil {
						readErrs[w] = fmt.Errorf("reader %d lba %d: %w", w, lba, err)
						return
					}
					if buf[0] != byte(lba+last*7) || buf[ChunkSize-1] != byte(lba+last*7+ChunkSize-1) {
						readErrs[w] = fmt.Errorf("reader %d lba %d: read back stale or corrupt data", w, lba)
						return
					}
				}
			}
		}(w)
	}
	rg.Wait()
	readElapsed := time.Since(readStart) //eplog:wallclock measured throughput is the experiment's output
	for _, err := range readErrs {
		if err != nil {
			return nil, err
		}
	}
	readBytes := -readBase
	for _, c := range counters {
		readBytes += c.ReadBytes()
	}

	report, err := e.Verify()
	if err != nil {
		return nil, err
	}
	if !report.OK() {
		return nil, fmt.Errorf("experiments: scaling run left inconsistent stripes: %d data, %d log",
			len(report.BadDataStripes), len(report.BadLogStripes))
	}

	res := &ScalingResult{
		Shards:       shards,
		Workers:      workers,
		Writers:      writers,
		Requests:     total,
		Elapsed:      elapsed,
		ReadElapsed:  readElapsed,
		SSDReadBytes: readBytes,
		EPLogStats:   e.Stats(),
	}
	for _, c := range counters {
		res.SSDWriteBytes += c.WriteBytes()
	}
	for _, c := range logCnt {
		res.LogWriteBytes += c.WriteBytes()
	}
	for name, h := range sink.Snapshot().Histograms {
		if strings.HasPrefix(name, "core.shard") && strings.HasSuffix(name, ".lock_wait_seconds") {
			res.LockWaitSeconds += h.Sum
		}
	}
	return res, nil
}

// ScalingIdentical reports whether two scaling results carry identical
// traffic counters. Stats.Commits is excluded: the final Commit folds once
// per shard, so the commit count equals the shard count by construction
// while every byte and chunk counter stays fixed.
func ScalingIdentical(a, b *ScalingResult) bool {
	sa, sb := a.EPLogStats, b.EPLogStats
	sa.Commits, sb.Commits = 0, 0
	return a.SSDWriteBytes == b.SSDWriteBytes &&
		a.SSDReadBytes == b.SSDReadBytes &&
		a.LogWriteBytes == b.LogWriteBytes &&
		a.Requests == b.Requests &&
		sa == sb
}

// FormatScaling renders a shard sweep as a table with speedups relative
// to the first row.
func FormatScaling(results []*ScalingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling: %d single-chunk updates, (6+2)-RAID-6, byte counts must not vary with shards\n",
		results[0].Requests)
	fmt.Fprintf(&b, "%-8s %-8s %-8s %-14s %-14s %-9s %-12s %-10s %-8s %-12s %s\n",
		"shards", "workers", "writers", "ssd_wr_bytes", "log_wr_bytes", "commits", "elapsed", "lock_wait", "speedup", "rd_elapsed", "rd_speedup")
	base := results[0].Elapsed.Seconds()
	readBase := results[0].ReadElapsed.Seconds()
	for _, r := range results {
		speedup, readSpeedup := 0.0, 0.0
		if r.Elapsed > 0 {
			speedup = base / r.Elapsed.Seconds()
		}
		if r.ReadElapsed > 0 {
			readSpeedup = readBase / r.ReadElapsed.Seconds()
		}
		fmt.Fprintf(&b, "%-8d %-8d %-8d %-14d %-14d %-9d %-12v %-10v %-8s %-12v %.2fx\n",
			r.Shards, r.Workers, r.Writers, r.SSDWriteBytes, r.LogWriteBytes,
			r.EPLogStats.Commits, r.Elapsed.Round(time.Millisecond),
			time.Duration(r.LockWaitSeconds*float64(time.Second)).Round(time.Microsecond),
			fmt.Sprintf("%.2fx", speedup), r.ReadElapsed.Round(time.Millisecond), readSpeedup)
	}
	return b.String()
}
