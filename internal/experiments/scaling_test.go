package experiments

import (
	"fmt"
	"testing"

	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/trace"
)

// TestScalingByteCountsShardIndependent is the acceptance check behind
// eplogbench -shards: the traffic counters of the shard-scaling workload
// must be byte-identical for every shard count (Stats.Commits excepted —
// the final Commit folds once per shard by construction).
func TestScalingByteCountsShardIndependent(t *testing.T) {
	const scale = 64
	base, err := Scaling(scale, 1, 1)
	if err != nil {
		t.Fatalf("Scaling(shards=1): %v", err)
	}
	if base.SSDWriteBytes == 0 || base.LogWriteBytes == 0 {
		t.Fatalf("baseline run wrote nothing: ssd=%d log=%d", base.SSDWriteBytes, base.LogWriteBytes)
	}
	for _, s := range []int{2, 4, 8} {
		r, err := Scaling(scale, s, 1)
		if err != nil {
			t.Fatalf("Scaling(shards=%d): %v", s, err)
		}
		if !ScalingIdentical(base, r) {
			t.Errorf("shards=%d: counters diverged:\n got ssd=%d log=%d stats=%+v\nwant ssd=%d log=%d stats=%+v",
				s, r.SSDWriteBytes, r.LogWriteBytes, r.EPLogStats,
				base.SSDWriteBytes, base.LogWriteBytes, base.EPLogStats)
		}
		if got, want := r.EPLogStats.Commits, int64(s); got != want {
			t.Errorf("shards=%d: commits = %d, want one per shard (%d)", s, got, want)
		}
	}
}

// TestTraceSerialShardedByteIdentity replays a synthetic trace through the
// full Run harness at several shard counts. The trace's updates are all
// single-chunk, so no elastic group can straddle a shard boundary and
// every traffic counter — log traffic included — must be byte-identical
// to the serial engine's.
func TestTraceSerialShardedByteIdentity(t *testing.T) {
	tr := trace.SequentialThenUniform("ident", 96*int64(ChunkSize), 400, ChunkSize, 11)
	run := func(shards int) *RunResult {
		t.Helper()
		res, err := Run(RunConfig{
			Setting:     DefaultSetting(),
			Scheme:      EPLog,
			Trace:       tr,
			CommitAtEnd: true,
			Shards:      shards,
		})
		if err != nil {
			t.Fatalf("Run(shards=%d): %v", shards, err)
		}
		return res
	}
	base := run(1)
	if base.SSDWriteBytes == 0 || base.LogWriteBytes == 0 {
		t.Fatalf("baseline replay wrote nothing: %+v", base)
	}
	for _, s := range []int{2, 4} {
		r := run(s)
		if r.SSDWriteBytes != base.SSDWriteBytes || r.SSDReadBytes != base.SSDReadBytes ||
			r.LogWriteBytes != base.LogWriteBytes || r.Requests != base.Requests {
			t.Errorf("shards=%d: traffic diverged: got ssd=%d/%d log=%d req=%d, want ssd=%d/%d log=%d req=%d",
				s, r.SSDWriteBytes, r.SSDReadBytes, r.LogWriteBytes, r.Requests,
				base.SSDWriteBytes, base.SSDReadBytes, base.LogWriteBytes, base.Requests)
		}
		gs, bs := r.EPLogStats, base.EPLogStats
		gs.Commits, bs.Commits = 0, 0
		if gs != bs {
			t.Errorf("shards=%d: engine stats diverged:\n got %+v\nwant %+v", s, gs, bs)
		}
	}
}

// TestTraceShardedGroupSplitBounds pins the documented trade-off for
// traces with multi-chunk updates: a request straddling a shard boundary
// splits its elastic group per shard, so the sharded engine may form more
// (narrower) log stripes and write more log chunks — but the data and
// parity traffic to the main array must stay byte-identical, because the
// split changes only how updates are grouped for logging, never what is
// written where on the SSDs.
func TestTraceShardedGroupSplitBounds(t *testing.T) {
	skipInShort(t)
	tr, err := loadTrace("FIN", testScale)
	if err != nil {
		t.Fatalf("loadTrace: %v", err)
	}
	run := func(shards int) *RunResult {
		t.Helper()
		res, err := Run(RunConfig{
			Setting:     DefaultSetting(),
			Scheme:      EPLog,
			Trace:       tr,
			CommitAtEnd: true,
			Shards:      shards,
		})
		if err != nil {
			t.Fatalf("Run(shards=%d): %v", shards, err)
		}
		return res
	}
	base := run(1)
	sharded := run(4)
	if sharded.SSDWriteBytes != base.SSDWriteBytes {
		t.Errorf("ssd write bytes: sharded %d, serial %d (must be identical)",
			sharded.SSDWriteBytes, base.SSDWriteBytes)
	}
	gs, bs := sharded.EPLogStats, base.EPLogStats
	if gs.DataWriteChunks != bs.DataWriteChunks {
		t.Errorf("data chunks: sharded %d, serial %d", gs.DataWriteChunks, bs.DataWriteChunks)
	}
	if gs.ParityWriteChunks != bs.ParityWriteChunks {
		t.Errorf("parity chunks: sharded %d, serial %d", gs.ParityWriteChunks, bs.ParityWriteChunks)
	}
	if gs.FullStripeWrites != bs.FullStripeWrites {
		t.Errorf("full-stripe writes: sharded %d, serial %d", gs.FullStripeWrites, bs.FullStripeWrites)
	}
	if gs.LogChunkWrites < bs.LogChunkWrites {
		t.Errorf("log chunks: sharded %d < serial %d (splitting can only add log stripes)",
			gs.LogChunkWrites, bs.LogChunkWrites)
	}
	if gs.LogStripes < bs.LogStripes {
		t.Errorf("log stripes: sharded %d < serial %d", gs.LogStripes, bs.LogStripes)
	}
}

// TestTraceSerialShardedVirtualTimeIdentity replays a single-chunk trace
// directly against engines over unit-latency devices, chaining each
// request's start to the previous end, and demands that every request's
// completion time — and the final commit's — match the serial engine
// exactly. Together with the byte-identity test above this is the
// "Shards=1-and-friends are bit-identical" contract at trace granularity.
func TestTraceSerialShardedVirtualTimeIdentity(t *testing.T) {
	const (
		k       = 6
		m       = 2
		stripes = 16
		csize   = 512
	)
	tr := trace.SequentialThenUniform("vt", int64(stripes*k*csize), 200, csize, 23)

	replay := func(shards int) (ends []float64, commitEnd float64) {
		t.Helper()
		devChunks := int64(stripes + 2048)
		devs := make([]device.Dev, k+m)
		for i := range devs {
			devs[i] = device.WithLatency(device.NewMem(devChunks, csize), 1.0, 1.0)
		}
		logs := make([]device.Dev, m)
		for i := range logs {
			logs[i] = device.WithLatency(device.NewMem(4096, csize), 1.0, 1.0)
		}
		e, err := core.New(devs, logs, core.Config{K: k, Stripes: stripes, Shards: shards})
		if err != nil {
			t.Fatalf("New(shards=%d): %v", shards, err)
		}
		defer e.Close()
		logical := e.Chunks()
		buf := make([]byte, csize)
		now := 0.0
		for ri, r := range tr.Requests {
			if r.Op != trace.OpWrite {
				continue
			}
			lba, n := trace.ChunkSpan(r.Offset, r.Size, csize)
			if n != 1 || lba >= logical {
				t.Fatalf("request %d: want single in-range chunk, got lba=%d n=%d", ri, lba, n)
			}
			for i := range buf {
				buf[i] = byte(lba + int64(ri) + int64(i))
			}
			end, err := e.WriteChunks(now, lba, buf)
			if err != nil {
				t.Fatalf("shards=%d request %d: %v", shards, ri, err)
			}
			ends = append(ends, end)
			now = end
		}
		commitEnd, err = e.CommitAt(now)
		if err != nil {
			t.Fatalf("shards=%d commit: %v", shards, err)
		}
		return ends, commitEnd
	}

	baseEnds, baseCommit := replay(1)
	for _, s := range []int{2, 4} {
		ends, commit := replay(s)
		if len(ends) != len(baseEnds) {
			t.Fatalf("shards=%d: %d requests, serial %d", s, len(ends), len(baseEnds))
		}
		for i := range ends {
			if ends[i] != baseEnds[i] {
				t.Fatalf("shards=%d: request %d end = %v, serial %v", s, i, ends[i], baseEnds[i])
			}
		}
		if commit != baseCommit {
			t.Errorf("shards=%d: commit end = %v, serial %v", s, commit, baseCommit)
		}
	}
}

// TestScalingFormat smoke-tests the table renderer.
func TestScalingFormat(t *testing.T) {
	r, err := Scaling(64, 2, 1)
	if err != nil {
		t.Fatalf("Scaling: %v", err)
	}
	out := FormatScaling([]*ScalingResult{r})
	if out == "" {
		t.Fatal("empty table")
	}
	if want := fmt.Sprintf("%d", r.Requests); out == "" || !contains(out, want) {
		t.Fatalf("table %q missing request count %s", out, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
