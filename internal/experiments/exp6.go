package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/metadata"
)

// Exp6Result reproduces Table II: write traffic with and without metadata
// checkpoint operations. The workload follows the paper's IOzone setup:
// sequential full-stripe writes covering a region ("stripe creation"),
// then uniform random 4KB updates across the stripes.
type Exp6Result struct {
	RegionBytes int64
	Updates     int64

	// CreateBytes and UpdateBytes are the SSD write traffic of the two
	// phases, excluding checkpoints.
	CreateBytes int64
	UpdateBytes int64

	// FullAfterCreate, IncrAfterUpdates and FullAfterUpdates are the
	// metadata-volume write sizes of the three checkpoint cases
	// (mirrored, so each logical byte is written twice, as on the
	// paper's RAID-10 metadata partition).
	FullAfterCreate  int64
	IncrAfterUpdates int64
	FullAfterUpdates int64
}

// CreateOverheadPct returns the full-checkpoint overhead relative to the
// creation-phase traffic.
func (r *Exp6Result) CreateOverheadPct() float64 {
	return float64(r.FullAfterCreate) / float64(r.CreateBytes) * 100
}

// IncrOverheadPct returns the incremental-checkpoint overhead relative to
// the cumulative traffic.
func (r *Exp6Result) IncrOverheadPct() float64 {
	return float64(r.IncrAfterUpdates) / float64(r.CreateBytes+r.UpdateBytes) * 100
}

// FullUpdateOverheadPct returns the post-update full-checkpoint overhead
// relative to the cumulative traffic.
func (r *Exp6Result) FullUpdateOverheadPct() float64 {
	return float64(r.FullAfterUpdates) / float64(r.CreateBytes+r.UpdateBytes) * 100
}

// Exp6Metadata runs the metadata-overhead experiment at the given scale
// (region = 8GB / scale).
func Exp6Metadata(scale int64) (*Exp6Result, error) {
	region := int64(8<<30) / scale
	if region < 8<<20 {
		region = 8 << 20
	}
	setting := DefaultSetting()
	k := int64(setting.K)
	n := setting.K + setting.M
	stripes := region / ChunkSize / k
	if stripes < 8 {
		stripes = 8
	}
	updates := stripes // ~one 4KB update per stripe on average

	devChunks := stripes + updates/int64(n) + updates/int64(n*2) + 64
	mains := make([]device.Dev, n)
	counters := make([]*device.Counting, n)
	for i := 0; i < n; i++ {
		c := device.NewCounting(device.NewMem(devChunks, ChunkSize))
		counters[i] = c
		mains[i] = c
	}
	logs := make([]device.Dev, setting.M)
	for i := range logs {
		logs[i] = device.NewMem(updates+64, ChunkSize)
	}
	e, err := core.New(mains, logs, core.Config{K: setting.K, Stripes: stripes})
	if err != nil {
		return nil, err
	}

	// Metadata volume: a mirror over two counting devices, standing in
	// for the RAID-10 metadata partitions.
	snapEstimate := (stripes*(16+k*32+2) + int64(updates)*64) / ChunkSize * 2
	volChunks := 1 + 2*(snapEstimate+16) + snapEstimate + 16
	metaCnt := []*device.Counting{
		device.NewCounting(device.NewMem(volChunks, ChunkSize)),
		device.NewCounting(device.NewMem(volChunks, ChunkSize)),
	}
	mir, err := device.NewMirror(metaCnt[0], metaCnt[1])
	if err != nil {
		return nil, err
	}
	vol, err := metadata.Format(mir, snapEstimate+16)
	if err != nil {
		return nil, err
	}

	mainBytes := func() int64 {
		var b int64
		for _, c := range counters {
			b += c.WriteBytes()
		}
		return b
	}
	metaBytes := func() int64 {
		return metaCnt[0].WriteBytes() + metaCnt[1].WriteBytes()
	}

	res := &Exp6Result{RegionBytes: region, Updates: updates}

	// Phase 1: stripe creation (sequential full-stripe writes).
	stripeBuf := make([]byte, k*ChunkSize)
	payload := randomChunk(6)
	for c := int64(0); c < k; c++ {
		copy(stripeBuf[c*ChunkSize:], payload)
	}
	for s := int64(0); s < stripes; s++ {
		if _, err := e.WriteChunks(0, s*k, stripeBuf); err != nil {
			return nil, err
		}
	}
	res.CreateBytes = mainBytes()

	// Case (i): full checkpoint after stripe creation.
	m0 := metaBytes()
	if err := vol.WriteFull(e.Snapshot()); err != nil {
		return nil, err
	}
	res.FullAfterCreate = metaBytes() - m0

	// Phase 2: uniform random 4KB updates.
	r := rand.New(rand.NewSource(7))
	preUpdate := mainBytes()
	for u := int64(0); u < updates; u++ {
		lba := r.Int63n(e.Chunks())
		if _, err := e.WriteChunks(0, lba, payload); err != nil {
			return nil, err
		}
	}
	res.UpdateBytes = mainBytes() - preUpdate

	// Case (ii): incremental checkpoint after the updates.
	m1 := metaBytes()
	if err := vol.WriteIncremental(e.DirtyDelta()); err != nil {
		return nil, err
	}
	res.IncrAfterUpdates = metaBytes() - m1

	// Case (iii): full checkpoint after the updates.
	m2 := metaBytes()
	if err := vol.WriteFull(e.Snapshot()); err != nil {
		return nil, err
	}
	res.FullAfterUpdates = metaBytes() - m2
	return res, nil
}

// FormatExp6 renders Table II.
func FormatExp6(r *Exp6Result) string {
	var b strings.Builder
	b.WriteString("Experiment 6 (Table II): metadata checkpoint overhead, (6+2)-RAID-6\n")
	fmt.Fprintf(&b, "region %.2f GB, %d random 4KB updates\n", gb(r.RegionBytes), r.Updates)
	fmt.Fprintf(&b, "%-34s %14s %10s\n", "Case", "Write size", "Overhead")
	fmt.Fprintf(&b, "%-34s %11.3f GB %10s\n", "stripe creation, no checkpoint", gb(r.CreateBytes), "-")
	fmt.Fprintf(&b, "%-34s %11.3f MB %9.2f%%\n", "full checkpoint after creation",
		float64(r.FullAfterCreate)/1e6, r.CreateOverheadPct())
	fmt.Fprintf(&b, "%-34s %11.3f GB %10s\n", "updates, no checkpoint", gb(r.UpdateBytes), "-")
	fmt.Fprintf(&b, "%-34s %11.3f MB %9.2f%%\n", "incremental chkpt after updates",
		float64(r.IncrAfterUpdates)/1e6, r.IncrOverheadPct())
	fmt.Fprintf(&b, "%-34s %11.3f MB %9.2f%%\n", "full checkpoint after updates",
		float64(r.FullAfterUpdates)/1e6, r.FullUpdateOverheadPct())
	return b.String()
}
