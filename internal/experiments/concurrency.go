package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/device"
)

// ConcurrencyResult is the outcome of the concurrent-writers experiment:
// byte-exact traffic counters that must not depend on the worker count or
// on goroutine interleaving, plus the wall-clock time of the run.
type ConcurrencyResult struct {
	// Workers is the engine's worker-pool bound; Writers is the number of
	// concurrent writer goroutines driving the array (equal to Workers,
	// floored at 1).
	Workers int
	Writers int
	// Requests is the total single-chunk update requests issued.
	Requests int64
	// Elapsed is the wall-clock duration of the write phase.
	Elapsed time.Duration
	// SSDWriteBytes and LogWriteBytes are measured at the devices;
	// EPLogStats are the engine's own counters. All are order-independent
	// (see the workload construction in Concurrency).
	SSDWriteBytes int64
	LogWriteBytes int64
	EPLogStats    core.Stats
}

// Concurrency drives one EPLog array with workers concurrent writer
// goroutines and returns traffic counters that are byte-identical for
// every worker count. The workload is constructed so the counters cannot
// depend on interleaving:
//
//   - each writer owns a disjoint set of LBAs, and every request is a
//     single-chunk update, so each request forms exactly one log stripe
//     (k'=1) regardless of what other writers do;
//   - device buffers, the stripe buffer, and CommitEvery are disabled, and
//     the update headroom and log capacity are sized so no commit triggers
//     mid-run — the one fold happens at the final Commit, over the same
//     dirty-stripe set in every schedule.
//
// The per-request work (erasure coding, device I/O) still runs on the
// engine's worker pool, so wall-clock time does improve with workers while
// the byte counters stay fixed — the property the race-detector CI and the
// eplogbench -workers flag check.
func Concurrency(scale int64, workers int) (*ConcurrencyResult, error) {
	if scale < 1 {
		return nil, fmt.Errorf("experiments: scale must be >= 1, got %d", scale)
	}
	set := DefaultSetting()
	k, m := set.K, set.M
	nDevs := k + m
	stripes := max(int64(32), 2048/scale)
	lbas := stripes * int64(k)
	rounds := int64(2) // updates per LBA
	total := lbas * rounds

	// Headroom: every update allocates one fresh chunk on the LBA's home
	// device and nothing is released before the final commit, so per-device
	// allocations are bounded by the device's share of the requests. Give
	// each device room for all of them to keep the guard band unreachable.
	devChunks := stripes + total + 8
	logChunks := total + 8 // one log-stripe slot per request

	devs := make([]device.Dev, nDevs)
	counters := make([]*device.Counting, nDevs)
	for i := range devs {
		counters[i] = device.NewCounting(device.NewMem(devChunks, ChunkSize))
		devs[i] = counters[i]
	}
	logDevs := make([]device.Dev, m)
	logCnt := make([]*device.Counting, m)
	for i := range logDevs {
		logCnt[i] = device.NewCounting(device.NewMem(logChunks, ChunkSize))
		logDevs[i] = logCnt[i]
	}
	e, err := core.New(devs, logDevs, core.Config{
		K:                 k,
		Stripes:           stripes,
		CommitGuardChunks: 1, // explicit: the default (capacity/16) could fire mid-run
		Workers:           workers,
	})
	if err != nil {
		return nil, err
	}

	writers := max(1, workers)
	start := time.Now() //eplog:wallclock measured throughput is the experiment's output
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, ChunkSize)
			for r := int64(0); r < rounds; r++ {
				// Writer w owns LBAs congruent to w mod writers.
				for lba := int64(w); lba < lbas; lba += int64(writers) {
					for i := range buf {
						buf[i] = byte(lba + r*7 + int64(i))
					}
					if _, err := e.WriteChunks(0, lba, buf); err != nil {
						errs[w] = fmt.Errorf("writer %d lba %d: %w", w, lba, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start) //eplog:wallclock measured throughput is the experiment's output
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := e.Commit(); err != nil {
		return nil, err
	}
	report, err := e.Verify()
	if err != nil {
		return nil, err
	}
	if !report.OK() {
		return nil, fmt.Errorf("experiments: concurrency run left inconsistent stripes: %d data, %d log",
			len(report.BadDataStripes), len(report.BadLogStripes))
	}

	res := &ConcurrencyResult{
		Workers:    workers,
		Writers:    writers,
		Requests:   total,
		Elapsed:    elapsed,
		EPLogStats: e.Stats(),
	}
	for _, c := range counters {
		res.SSDWriteBytes += c.WriteBytes()
	}
	for _, c := range logCnt {
		res.LogWriteBytes += c.WriteBytes()
	}
	return res, nil
}

// FormatConcurrency renders a worker sweep as a table.
func FormatConcurrency(results []*ConcurrencyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrency: %d single-chunk updates, (6+2)-RAID-6, byte counts must not vary with workers\n",
		results[0].Requests)
	fmt.Fprintf(&b, "%-8s %-8s %-14s %-14s %-12s %s\n",
		"workers", "writers", "ssd_wr_bytes", "log_wr_bytes", "commits", "elapsed")
	for _, r := range results {
		fmt.Fprintf(&b, "%-8d %-8d %-14d %-14d %-12d %v\n",
			r.Workers, r.Writers, r.SSDWriteBytes, r.LogWriteBytes,
			r.EPLogStats.Commits, r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}
