package experiments

import (
	"strings"
	"testing"

	"github.com/eplog/eplog/internal/obs"
)

// TestObservabilityReconciles asserts the layer's accounting invariant:
// with a trace ring sized to retain the whole run, the parity chunks the
// trace accounts for (parity-commit N plus full-stripe Aux) equal the
// engine's ParityWriteChunks counter exactly.
func TestObservabilityReconciles(t *testing.T) {
	o, err := Observability(testScale * 4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Dropped != 0 {
		t.Fatalf("trace ring dropped %d events; ringSize under-provisioned", o.Dropped)
	}
	if o.ParityFromTrace == 0 {
		t.Fatal("trace accounts for zero parity chunks")
	}
	if got, want := o.ParityFromTrace, o.Result.EPLogStats.ParityWriteChunks; got != want {
		t.Fatalf("parity chunks from trace = %d, engine counter = %d", got, want)
	}
	if got := SumParityEvents(o.Events); got != o.ParityFromTrace {
		t.Fatalf("SumParityEvents = %d, ObservedResult.ParityFromTrace = %d", got, o.ParityFromTrace)
	}

	// The run must have exercised the headline metrics.
	for _, name := range []string{"core.write_latency", "core.commit_latency", "core.commit_flush_latency"} {
		if o.Snapshot.Histograms[name].Count == 0 {
			t.Errorf("histogram %s recorded nothing", name)
		}
	}
	if _, ok := o.Snapshot.Counters["ssd.0.gc_runs"]; !ok {
		t.Error("SSD GC counters not registered")
	}
	var commits int
	for _, ev := range o.Events {
		if ev.Kind == obs.KindCommit {
			commits++
		}
	}
	if commits == 0 {
		t.Error("trace holds no parity-commit events")
	}

	out := FormatObservability(o)
	for _, want := range []string{"write latency", "commit latency", "parity reconciliation"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatObservability output missing %q", want)
		}
	}
}
