// Package experiments wires the workload substrate, the device simulators,
// and the three parity-update schemes (MD, PL, EPLog) into the paper's
// evaluation harness: one driver per table/figure of Section V, plus the
// Figure 6 reliability series. Every driver works at a configurable scale
// factor (1 = paper scale) so the whole suite can run on a laptop.
package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/hdd"
	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/paritylog"
	"github.com/eplog/eplog/internal/raid"
	"github.com/eplog/eplog/internal/ssd"
	"github.com/eplog/eplog/internal/store"
	"github.com/eplog/eplog/internal/trace"
)

// Scheme selects a parity-update scheme.
type Scheme int

// The three schemes the paper compares.
const (
	MD    Scheme = iota + 1 // conventional RAID (mdadm)
	PL                      // original parity logging
	EPLog                   // elastic parity logging
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case MD:
		return "MD"
	case PL:
		return "PL"
	case EPLog:
		return "EPLog"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Setting is a RAID configuration from Section V-A.
type Setting struct {
	Name string
	K    int // data chunks per stripe
	M    int // parity chunks / log devices
}

// Settings are the paper's four configurations.
func Settings() []Setting {
	return []Setting{
		{Name: "(4+1)-RAID-5", K: 4, M: 1},
		{Name: "(6+1)-RAID-5", K: 6, M: 1},
		{Name: "(4+2)-RAID-6", K: 4, M: 2},
		{Name: "(6+2)-RAID-6", K: 6, M: 2},
	}
}

// DefaultSetting is the paper's headline configuration, (6+2)-RAID-6.
func DefaultSetting() Setting { return Setting{Name: "(6+2)-RAID-6", K: 6, M: 2} }

// ChunkSize is the paper's chunk size.
const ChunkSize = 4096

// RunConfig describes one trace replay.
type RunConfig struct {
	Setting Setting
	Scheme  Scheme
	Trace   *trace.Trace

	// DeviceBufferChunks enables EPLog's per-SSD buffers (Exp 3).
	DeviceBufferChunks int
	// HotColdGrouping switches the buffers to coldest-first eviction.
	HotColdGrouping bool
	// CommitEvery enables EPLog's periodic parity commit (Exp 4).
	CommitEvery int
	// CommitAtEnd performs one parity commit after the replay (Exp 4).
	CommitAtEnd bool
	// TrimOnCommit enables the TRIM extension (ablation).
	TrimOnCommit bool
	// UpdateHeadroom bounds EPLog's per-device no-overwrite area to this
	// fraction of the stripe count (space-exhaustion commits kick in, as
	// on a finite SSD partition). Zero sizes the area generously so no
	// forced commit ever happens.
	UpdateHeadroom float64
	// Shards partitions EPLog's stripes into independent stripe groups
	// (core.Config.Shards). Each shard owns a slice of every device's
	// update headroom and of the log space, so geometry() scales both by
	// the shard count: a workload skewed onto one shard must still fit in
	// that shard's partition.
	Shards int
	// Workers bounds EPLog's worker pool (core.Config.Workers).
	Workers int

	// UseSSDSim replaces RAM devices with the FTL simulator so GC
	// statistics are collected (Exps 2 and 4) and, together with the HDD
	// model, service times become meaningful (Exp 5).
	UseSSDSim bool
	// Timing enables closed-loop virtual-time replay and KIOPS
	// measurement (Exp 5). Requires UseSSDSim.
	Timing bool
	// QueueDepth is the number of outstanding requests in a timing
	// replay; 0 or 1 is strictly synchronous (the paper's baseline
	// assumption), larger values model the paper's multithreaded
	// replay.
	QueueDepth int
	// IncludeReads replays the trace's read requests too (against the
	// scheme's read path) instead of skipping them; they count toward
	// the request total, as in the paper's KIOPS definition.
	IncludeReads bool

	// Obs attaches an observability sink: devices are wrapped with
	// per-device metrics, the SSD/HDD simulators emit their own events,
	// and EPLog runs record write/read/commit latencies and trace events.
	// The sink's ring must be sized for the whole run (preconditioning
	// included) if the trace is to reconcile against the counters. Nil
	// disables observability.
	Obs *obs.Sink
}

// RunResult aggregates the measurements of one replay (post-precondition
// traffic only, matching the paper's methodology).
type RunResult struct {
	Requests int64
	// ReadRequests is the subset of Requests that were reads
	// (IncludeReads runs only).
	ReadRequests int64
	// SSDWriteBytes is the total write traffic to the main array.
	SSDWriteBytes int64
	// SSDReadBytes is the total read traffic to the main array (the
	// pre-read cost of MD and PL).
	SSDReadBytes int64
	// LogWriteBytes is the total log-device traffic.
	LogWriteBytes int64
	// GCPerSSD is the mean number of GC operations per SSD (FTL sim).
	GCPerSSD float64
	// PagesMovedPerSSD is the mean number of relocated flash pages.
	PagesMovedPerSSD float64
	// WriteAmp is the mean flash write amplification.
	WriteAmp float64
	// MeanLogStripeWidth is the average elastic log-stripe width k'
	// (EPLog runs only) — the direct measure of elasticity: PL is pinned
	// to per-stripe logging while EPLog widens stripes across requests
	// and buffers.
	MeanLogStripeWidth float64
	// Elapsed is the virtual time of the replay (timing runs).
	Elapsed float64
	// KIOPS is Requests/Elapsed/1000 (timing runs).
	KIOPS float64
	// EPLogStats is the engine's full counter set (EPLog runs only). It
	// covers the whole array lifetime including preconditioning, matching
	// the trace events' coverage.
	EPLogStats core.Stats
	// Metrics is a snapshot of the observability registry taken after the
	// replay (runs with Obs set only).
	Metrics *obs.Snapshot
}

// arrayBundle holds the built scheme plus its measurement hooks.
type arrayBundle struct {
	st       store.Store
	ssds     []*ssd.Device      // when UseSSDSim
	counters []*device.Counting // main-array counters (RAM runs)
	logCnt   []*device.Counting // log-device counters
	eplog    *core.EPLog
}

// geometry derives the array shape for a trace: the number of stripes
// covering the trace's address space and the per-device capacity needed
// for EPLog's no-overwrite headroom.
func geometry(cfg RunConfig) (stripes, devChunks, logChunks int64) {
	wsChunks := (cfg.Trace.MaxOffset() + ChunkSize - 1) / ChunkSize
	k := int64(cfg.Setting.K)
	stripes = (wsChunks + k - 1) / k
	if stripes < 4 {
		stripes = 4
	}
	// Chunk writes the replay will issue, for update-area and log sizing.
	var chunkWrites int64
	for _, r := range cfg.Trace.Requests {
		if r.Op != trace.OpWrite {
			continue
		}
		_, n := trace.ChunkSpan(r.Offset, r.Size, ChunkSize)
		chunkWrites += n
	}
	n := int64(cfg.Setting.K + cfg.Setting.M)
	perDevUpdates := chunkWrites/n + chunkWrites/(n*4) + 64
	if cfg.UpdateHeadroom > 0 {
		perDevUpdates = int64(cfg.UpdateHeadroom*float64(stripes)) + 64
	}
	// Sharded engines range-partition each device's update headroom and
	// the log space, so a skewed trace must fit inside one shard's slice:
	// scale both by the shard count.
	if s := int64(cfg.Shards); s > 1 {
		perDevUpdates *= s
	}
	devChunks = stripes + perDevUpdates
	logChunks = chunkWrites + 64
	if s := int64(cfg.Shards); s > 1 {
		logChunks = chunkWrites*s + 64*s
	}
	return stripes, devChunks, logChunks
}

// build constructs the scheme under test over fresh devices.
func build(cfg RunConfig) (*arrayBundle, int64, error) {
	stripes, devChunks, logChunks := geometry(cfg)
	n := cfg.Setting.K + cfg.Setting.M
	b := &arrayBundle{}

	mains := make([]device.Dev, n)
	var commitGuard int64
	if cfg.UseSSDSim {
		raw := int64(float64(devChunks)/0.85) + int64(ssd.DefaultParams(0).PagesPerBlock)
		params := ssd.DefaultParams(raw * ChunkSize)
		// Round blocks up so the logical space covers devChunks.
		for int64(float64(params.Blocks*params.PagesPerBlock)*(1-params.OverProvision)) < devChunks {
			params.Blocks++
		}
		// EPLog must commit before the flash reaches a utilization the
		// FTL cannot collect out of: cap the live logical footprint at
		// 88% of the raw pages left after the FTL's clean-block
		// reserves (watermark + GC + active streams).
		rawPages := int64(params.Blocks * params.PagesPerBlock)
		maxLive := int64(0.88 * float64(rawPages-4*int64(params.PagesPerBlock)))
		if g := devChunks - maxLive; g > 16 {
			commitGuard = g
		} else {
			commitGuard = 16
		}
		for i := 0; i < n; i++ {
			d, err := ssd.New(params)
			if err != nil {
				return nil, 0, err
			}
			b.ssds = append(b.ssds, d)
			mains[i] = d
		}
	} else {
		for i := 0; i < n; i++ {
			c := device.NewCounting(device.NewMem(devChunks, ChunkSize))
			b.counters = append(b.counters, c)
			mains[i] = c
		}
	}

	logs := make([]device.Dev, cfg.Setting.M)
	for i := range logs {
		var inner device.Dev
		if cfg.Timing {
			d, err := hdd.New(hdd.DefaultParams(logChunks, ChunkSize))
			if err != nil {
				return nil, 0, err
			}
			d.SetObserver(cfg.Obs, i)
			inner = d
		} else {
			inner = device.NewMem(logChunks, ChunkSize)
		}
		c := device.NewCounting(inner)
		b.logCnt = append(b.logCnt, c)
		logs[i] = c
	}

	// Observability: the simulators emit their own events, and every
	// device gets per-device op/byte/latency metrics.
	if cfg.Obs != nil {
		for i, d := range b.ssds {
			d.SetObserver(cfg.Obs, i)
		}
		for i := range mains {
			mains[i] = device.NewTraced(mains[i], "main"+strconv.Itoa(i), cfg.Obs)
		}
		for i := range logs {
			logs[i] = device.NewTraced(logs[i], "log"+strconv.Itoa(i), cfg.Obs)
		}
	}

	switch cfg.Scheme {
	case MD:
		a, err := raid.New(mains, cfg.Setting.K, stripes)
		if err != nil {
			return nil, 0, err
		}
		b.st = a
	case PL:
		a, err := paritylog.New(mains, logs, cfg.Setting.K, stripes)
		if err != nil {
			return nil, 0, err
		}
		b.st = a
	case EPLog:
		e, err := core.New(mains, logs, core.Config{
			K:                  cfg.Setting.K,
			Stripes:            stripes,
			DeviceBufferChunks: cfg.DeviceBufferChunks,
			HotColdGrouping:    cfg.HotColdGrouping,
			CommitEvery:        cfg.CommitEvery,
			TrimOnCommit:       cfg.TrimOnCommit,
			CommitGuardChunks:  commitGuard,
			Workers:            cfg.Workers,
			Shards:             cfg.Shards,
			Obs:                cfg.Obs,
		})
		if err != nil {
			return nil, 0, err
		}
		b.st = e
		b.eplog = e
	default:
		return nil, 0, fmt.Errorf("experiments: unknown scheme %v", cfg.Scheme)
	}
	return b, stripes, nil
}

// resetCounters zeroes measurement state after preconditioning.
func (b *arrayBundle) resetCounters() {
	for _, d := range b.ssds {
		d.ResetStats()
	}
	for _, c := range b.counters {
		c.Reset()
	}
	for _, c := range b.logCnt {
		c.Reset()
	}
}

// collect gathers the result counters.
func (b *arrayBundle) collect(res *RunResult) {
	if len(b.ssds) > 0 {
		var gc, moved, wa float64
		for _, d := range b.ssds {
			st := d.Stats()
			res.SSDWriteBytes += st.HostWriteBytes
			res.SSDReadBytes += st.HostReads * int64(ChunkSize)
			gc += float64(st.GCInvocations)
			moved += float64(st.PagesMoved)
			wa += st.WriteAmplification()
		}
		res.GCPerSSD = gc / float64(len(b.ssds))
		res.PagesMovedPerSSD = moved / float64(len(b.ssds))
		res.WriteAmp = wa / float64(len(b.ssds))
	}
	for _, c := range b.counters {
		res.SSDWriteBytes += c.WriteBytes()
		res.SSDReadBytes += c.ReadBytes()
	}
	for _, c := range b.logCnt {
		res.LogWriteBytes += c.WriteBytes()
	}
}

// Run preconditions the array (sequential full-working-set fill, as in the
// paper), replays the trace's writes as updates, applies the configured
// commit policy, and returns the measurements of the replay phase.
func Run(cfg RunConfig) (*RunResult, error) {
	b, stripes, err := build(cfg)
	if err != nil {
		return nil, err
	}
	if b.eplog != nil {
		defer b.eplog.Close()
	}
	csize := int64(ChunkSize)
	logical := b.st.Chunks()

	// Precondition: sequential stripe-aligned writes over the full
	// working set, stripe by stripe (full-stripe writes everywhere).
	fill := randomChunk(1)
	stripeBuf := make([]byte, int64(cfg.Setting.K)*csize)
	for c := int64(0); c < int64(cfg.Setting.K); c++ {
		copy(stripeBuf[c*csize:], fill)
	}
	for s := int64(0); s < stripes; s++ {
		lba := s * int64(cfg.Setting.K)
		if _, err := b.st.WriteChunks(0, lba, stripeBuf); err != nil {
			return nil, fmt.Errorf("experiments: precondition stripe %d: %w", s, err)
		}
	}
	b.resetCounters()

	// Replay. Timed runs start at a fresh epoch beyond any device-clock
	// backlog the (untimed) preconditioning may have accumulated.
	res := &RunResult{}
	payload := randomChunk(2)
	buf := make([]byte, 0)
	readBuf := make([]byte, 0)
	now := 0.0
	const epoch = 1e5
	if cfg.Timing {
		now = epoch
	}
	// Closed-loop queue: with depth Q, up to Q requests are outstanding
	// and the next one starts when the earliest completes.
	depth := cfg.QueueDepth
	if depth < 1 {
		depth = 1
	}
	inflight := newMinHeap(depth)
	start := func() float64 {
		if !cfg.Timing {
			return 0
		}
		if inflight.len() < depth {
			return now
		}
		return inflight.popMin()
	}
	finish := func(end float64) {
		if !cfg.Timing {
			return
		}
		inflight.push(end)
		if end > now {
			now = end
		}
	}
	for _, r := range cfg.Trace.Requests {
		lba, nChunks := trace.ChunkSpan(r.Offset, r.Size, ChunkSize)
		if nChunks == 0 {
			continue
		}
		if lba >= logical {
			lba = logical - 1
		}
		if lba+nChunks > logical {
			nChunks = logical - lba
		}
		if nChunks <= 0 {
			continue
		}
		need := nChunks * csize
		switch r.Op {
		case trace.OpWrite:
			if int64(cap(buf)) < need {
				buf = make([]byte, need)
				for off := int64(0); off < need; off += csize {
					copy(buf[off:], payload)
				}
			}
			end, err := b.st.WriteChunks(start(), lba, buf[:need])
			if err != nil {
				return nil, fmt.Errorf("experiments: replay: %w", err)
			}
			finish(end)
			res.Requests++
		case trace.OpRead:
			if !cfg.IncludeReads {
				continue
			}
			if int64(cap(readBuf)) < need {
				readBuf = make([]byte, need)
			}
			end, err := b.st.ReadChunks(start(), lba, readBuf[:need])
			if err != nil {
				return nil, fmt.Errorf("experiments: replay read: %w", err)
			}
			finish(end)
			res.Requests++
			res.ReadRequests++
		}
	}
	if b.eplog != nil {
		if err := b.eplog.Flush(); err != nil {
			return nil, err
		}
		es := b.eplog.Stats()
		if es.LogStripes > 0 {
			res.MeanLogStripeWidth = float64(es.LogStripeMembers) / float64(es.LogStripes)
		}
	}
	if cfg.CommitAtEnd {
		if err := b.st.Commit(); err != nil {
			return nil, err
		}
	}

	if cfg.Timing {
		res.Elapsed = now - epoch
	}
	if cfg.Timing && res.Elapsed > 0 {
		res.KIOPS = float64(res.Requests) / res.Elapsed / 1000
	}
	b.collect(res)
	if b.eplog != nil {
		res.EPLogStats = b.eplog.Stats()
	}
	if cfg.Obs != nil {
		snap := cfg.Obs.Snapshot()
		res.Metrics = &snap
	}
	return res, nil
}

// SumParityEvents totals the parity chunks accounted for by a trace: N of
// every parity-commit event (the chunks folded by that commit) plus Aux of
// every full-stripe event (its m parity chunks). Over a ring large enough
// to retain the whole run — preconditioning included — the total equals
// the engine's Stats.ParityWriteChunks counter, which is how the trace is
// validated against the metrics.
func SumParityEvents(events []obs.Event) int64 {
	var total int64
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindCommit:
			total += ev.N
		case obs.KindFullStripe:
			total += ev.Aux
		}
	}
	return total
}

// precondition fills the whole logical space with sequential full-stripe
// writes, the paper's pre-replay conditioning.
func precondition(st store.Store, k int, stripes int64) error {
	csize := int64(ChunkSize)
	fill := randomChunk(1)
	stripeBuf := make([]byte, int64(k)*csize)
	for c := int64(0); c < int64(k); c++ {
		copy(stripeBuf[c*csize:], fill)
	}
	for s := int64(0); s < stripes; s++ {
		if _, err := st.WriteChunks(0, s*int64(k), stripeBuf); err != nil {
			return fmt.Errorf("experiments: precondition stripe %d: %w", s, err)
		}
	}
	return nil
}

// replayWrites replays a trace's writes untimed, clamping to the logical
// space.
func replayWrites(st store.Store, tr *trace.Trace) error {
	csize := int64(ChunkSize)
	logical := st.Chunks()
	payload := randomChunk(2)
	var buf []byte
	for _, r := range tr.Requests {
		if r.Op != trace.OpWrite {
			continue
		}
		lba, nChunks := trace.ChunkSpan(r.Offset, r.Size, ChunkSize)
		if nChunks == 0 {
			continue
		}
		if lba >= logical {
			lba = logical - 1
		}
		if lba+nChunks > logical {
			nChunks = logical - lba
		}
		if nChunks <= 0 {
			continue
		}
		need := nChunks * csize
		if int64(cap(buf)) < need {
			buf = make([]byte, need)
			for off := int64(0); off < need; off += csize {
				copy(buf[off:], payload)
			}
		}
		if _, err := st.WriteChunks(0, lba, buf[:need]); err != nil {
			return fmt.Errorf("experiments: replay: %w", err)
		}
	}
	return nil
}

// newMD builds the conventional-RAID baseline over prepared devices.
func newMD(devs []device.Dev, k int, stripes int64) (store.Store, error) {
	return raid.New(devs, k, stripes)
}

// minHeap is a small float64 min-heap for outstanding-request completion
// times.
type minHeap struct{ a []float64 }

func newMinHeap(capacity int) *minHeap {
	return &minHeap{a: make([]float64, 0, capacity)}
}

func (h *minHeap) len() int { return len(h.a) }

func (h *minHeap) push(v float64) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *minHeap) popMin() float64 {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return v
}

// randomChunk returns a deterministic pseudo-random chunk payload.
func randomChunk(seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	p := make([]byte, ChunkSize)
	r.Read(p)
	return p
}
