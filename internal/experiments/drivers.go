package experiments

import (
	"fmt"
	"strings"

	"github.com/eplog/eplog/internal/reliability"
	"github.com/eplog/eplog/internal/trace"
)

// DefaultScale is the default reduction factor for trace-driven
// experiments: request counts and working sets shrink by this factor
// relative to the paper, keeping every run laptop-sized. Scale 1 is paper
// scale.
const DefaultScale = 32

// loadTrace generates the scaled synthetic trace for a profile.
func loadTrace(name string, scale int64) (*trace.Trace, error) {
	p, err := trace.LookupProfile(name)
	if err != nil {
		return nil, err
	}
	return p.Scaled(scale).Generate(ChunkSize), nil
}

// gb converts bytes to GB (decimal, as the paper plots).
func gb(b int64) float64 { return float64(b) / 1e9 }

// pct returns the relative reduction of b versus a, in percent.
func pct(a, b int64) float64 {
	if a == 0 {
		return 0
	}
	return (1 - float64(b)/float64(a)) * 100
}

// TableIRow is one trace's statistics.
type TableIRow struct {
	Trace string
	Stats trace.Stats
}

// TableI computes the trace statistics table for the synthetic workloads.
func TableI(scale int64) ([]TableIRow, error) {
	rows := make([]TableIRow, 0, 4)
	for _, name := range trace.ProfileNames() {
		tr, err := loadTrace(name, scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIRow{Trace: name, Stats: tr.WriteStats(ChunkSize)})
	}
	return rows, nil
}

// FormatTableI renders Table I.
func FormatTableI(rows []TableIRow, scale int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: trace statistics (scale 1/%d)\n", scale)
	fmt.Fprintf(&b, "%-6s %12s %10s %10s %9s\n", "Trace", "No. writes", "Avg KB", "Random %", "WSS GB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %12d %10.2f %10.2f %9.3f\n",
			r.Trace, r.Stats.Writes, r.Stats.AvgWriteKB, r.Stats.RandomPct, r.Stats.WorkingSetGB)
	}
	return b.String()
}

// SchemeRow holds one (trace|setting, scheme) measurement.
type SchemeRow struct {
	Label  string
	Scheme Scheme
	Result RunResult
}

// runMatrix replays each label's trace under every scheme.
func runMatrix(labels []string, mk func(label string, s Scheme) (RunConfig, error)) ([]SchemeRow, error) {
	var rows []SchemeRow
	for _, label := range labels {
		for _, s := range []Scheme{MD, PL, EPLog} {
			cfg, err := mk(label, s)
			if err != nil {
				return nil, err
			}
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", label, s, err)
			}
			rows = append(rows, SchemeRow{Label: label, Scheme: s, Result: *res})
		}
	}
	return rows, nil
}

// Exp1Traces reproduces Fig. 7(a): write traffic to SSDs per trace under
// the default (6+2)-RAID-6 setting.
func Exp1Traces(scale int64) ([]SchemeRow, error) {
	return runMatrix(trace.ProfileNames(), func(label string, s Scheme) (RunConfig, error) {
		tr, err := loadTrace(label, scale)
		if err != nil {
			return RunConfig{}, err
		}
		return RunConfig{Setting: DefaultSetting(), Scheme: s, Trace: tr}, nil
	})
}

// Exp1Settings reproduces Fig. 7(b): write traffic across RAID settings
// under the FIN trace.
func Exp1Settings(scale int64) ([]SchemeRow, error) {
	settings := Settings()
	labels := make([]string, len(settings))
	byName := make(map[string]Setting, len(settings))
	for i, s := range settings {
		labels[i] = s.Name
		byName[s.Name] = s
	}
	tr, err := loadTrace("FIN", scale)
	if err != nil {
		return nil, err
	}
	return runMatrix(labels, func(label string, s Scheme) (RunConfig, error) {
		return RunConfig{Setting: byName[label], Scheme: s, Trace: tr}, nil
	})
}

// FormatWriteTraffic renders Exp 1 rows: absolute GB plus EPLog's
// reduction versus MD.
func FormatWriteTraffic(title string, rows []SchemeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %14s\n", "Workload", "MD GB", "PL GB", "EPLog GB", "EPLog vs MD")
	for i := 0; i < len(rows); i += 3 {
		md, pl, ep := rows[i].Result, rows[i+1].Result, rows[i+2].Result
		fmt.Fprintf(&b, "%-14s %10.3f %10.3f %10.3f %13.1f%%\n",
			rows[i].Label, gb(md.SSDWriteBytes), gb(pl.SSDWriteBytes), gb(ep.SSDWriteBytes),
			-pct(md.SSDWriteBytes, ep.SSDWriteBytes))
	}
	return b.String()
}

// Exp2Traces reproduces Fig. 8(a): GC requests per SSD per trace, using
// the FTL simulator.
func Exp2Traces(scale int64) ([]SchemeRow, error) {
	return runMatrix(trace.ProfileNames(), func(label string, s Scheme) (RunConfig, error) {
		tr, err := loadTrace(label, scale)
		if err != nil {
			return RunConfig{}, err
		}
		return RunConfig{Setting: DefaultSetting(), Scheme: s, Trace: tr,
			UseSSDSim: true, UpdateHeadroom: gcHeadroom, TrimOnCommit: true}, nil
	})
}

// gcHeadroom bounds EPLog's update area in the GC experiments so that, as
// on a finite SSD partition, space-exhaustion parity commits recycle the
// logical space and the FTL sees sustained pressure from all three
// schemes. TRIM-on-commit is enabled so released versions turn stale
// immediately (see EXPERIMENTS.md for the scale discussion).
const gcHeadroom = 0.5

// Exp2Settings reproduces Fig. 8(b): GC requests across settings on FIN.
func Exp2Settings(scale int64) ([]SchemeRow, error) {
	settings := Settings()
	labels := make([]string, len(settings))
	byName := make(map[string]Setting, len(settings))
	for i, s := range settings {
		labels[i] = s.Name
		byName[s.Name] = s
	}
	tr, err := loadTrace("FIN", scale)
	if err != nil {
		return nil, err
	}
	return runMatrix(labels, func(label string, s Scheme) (RunConfig, error) {
		return RunConfig{Setting: byName[label], Scheme: s, Trace: tr,
			UseSSDSim: true, UpdateHeadroom: gcHeadroom, TrimOnCommit: true}, nil
	})
}

// FormatGC renders Exp 2 rows.
func FormatGC(title string, rows []SchemeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %13s %13s\n",
		"Workload", "MD GC", "PL GC", "EPLog GC", "EPLog vs MD", "EPLog vs PL")
	for i := 0; i < len(rows); i += 3 {
		md, pl, ep := rows[i].Result, rows[i+1].Result, rows[i+2].Result
		fmt.Fprintf(&b, "%-14s %10.0f %10.0f %10.0f %12.1f%% %12.1f%%\n",
			rows[i].Label, md.GCPerSSD, pl.GCPerSSD, ep.GCPerSSD,
			-reduction(md.GCPerSSD, ep.GCPerSSD), -reduction(pl.GCPerSSD, ep.GCPerSSD))
	}
	return b.String()
}

// AlphaFromRows estimates the paper's α — the ratio of EPLog's SSD write
// traffic to conventional RAID's (Eq. 1), which feeds the Figure 6
// reliability analysis — from a set of Experiment 1 rows. The paper
// estimates α = 0.5 from its Figure 7; the harness reproduces that
// estimate from its own measurements.
func AlphaFromRows(rows []SchemeRow) float64 {
	var md, ep int64
	for i := 0; i+2 < len(rows); i += 3 {
		md += rows[i].Result.SSDWriteBytes
		ep += rows[i+2].Result.SSDWriteBytes
	}
	if md == 0 {
		return 0
	}
	return float64(ep) / float64(md)
}

func reduction(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (1 - b/a) * 100
}

// Exp3Row holds one (trace, buffer size) caching measurement.
type Exp3Row struct {
	Trace      string
	BufChunks  int
	WriteBytes int64
	LogBytes   int64
}

// Exp3Caching reproduces Fig. 9: EPLog's SSD write traffic and log size as
// the per-SSD device buffer grows.
func Exp3Caching(scale int64, bufSizes []int) ([]Exp3Row, error) {
	if len(bufSizes) == 0 {
		bufSizes = []int{0, 4, 16, 64}
	}
	var rows []Exp3Row
	for _, name := range trace.ProfileNames() {
		tr, err := loadTrace(name, scale)
		if err != nil {
			return nil, err
		}
		for _, bs := range bufSizes {
			res, err := Run(RunConfig{
				Setting: DefaultSetting(), Scheme: EPLog, Trace: tr,
				DeviceBufferChunks: bs,
			})
			if err != nil {
				return nil, fmt.Errorf("exp3 %s buf=%d: %w", name, bs, err)
			}
			rows = append(rows, Exp3Row{
				Trace: name, BufChunks: bs,
				WriteBytes: res.SSDWriteBytes, LogBytes: res.LogWriteBytes,
			})
		}
	}
	return rows, nil
}

// FormatExp3 renders Fig. 9, reporting reductions relative to the
// unbuffered run of the same trace.
func FormatExp3(rows []Exp3Row) string {
	var b strings.Builder
	b.WriteString("Experiment 3 (Fig. 9): EPLog device-buffer sweep, (6+2)-RAID-6\n")
	fmt.Fprintf(&b, "%-6s %10s %14s %12s %13s %12s\n",
		"Trace", "Buf chunks", "SSD write GB", "vs buf=0", "Log GB", "vs buf=0")
	base := make(map[string]Exp3Row)
	for _, r := range rows {
		if r.BufChunks == 0 {
			base[r.Trace] = r
		}
	}
	for _, r := range rows {
		b0 := base[r.Trace]
		fmt.Fprintf(&b, "%-6s %10d %14.3f %11.1f%% %13.3f %11.1f%%\n",
			r.Trace, r.BufChunks, gb(r.WriteBytes), -pct(b0.WriteBytes, r.WriteBytes),
			gb(r.LogBytes), -pct(b0.LogBytes, r.LogBytes))
	}
	return b.String()
}

// Exp4Row holds one (trace, commit policy) measurement.
type Exp4Row struct {
	Trace  string
	Policy string
	Result RunResult
}

// Exp4Commit reproduces Fig. 10: parity-commit overhead under three
// policies — no commit, commit at the end, commit every 1000 requests —
// plus the MD baseline for reference. GC statistics use the FTL simulator.
func Exp4Commit(scale int64) ([]Exp4Row, error) {
	policies := []struct {
		name        string
		commitEvery int
		commitEnd   bool
		scheme      Scheme
	}{
		{name: "no-commit", scheme: EPLog},
		{name: "commit-end", commitEnd: true, scheme: EPLog},
		{name: "commit-1000", commitEvery: 1000, scheme: EPLog},
		{name: "MD", scheme: MD},
	}
	var rows []Exp4Row
	for _, name := range trace.ProfileNames() {
		tr, err := loadTrace(name, scale)
		if err != nil {
			return nil, err
		}
		for _, p := range policies {
			res, err := Run(RunConfig{
				Setting: DefaultSetting(), Scheme: p.scheme, Trace: tr,
				CommitEvery: p.commitEvery, CommitAtEnd: p.commitEnd,
				UseSSDSim: true,
			})
			if err != nil {
				return nil, fmt.Errorf("exp4 %s %s: %w", name, p.name, err)
			}
			rows = append(rows, Exp4Row{Trace: name, Policy: p.name, Result: *res})
		}
	}
	return rows, nil
}

// FormatExp4 renders Fig. 10.
func FormatExp4(rows []Exp4Row) string {
	var b strings.Builder
	b.WriteString("Experiment 4 (Fig. 10): parity-commit overhead, (6+2)-RAID-6\n")
	fmt.Fprintf(&b, "%-6s %-12s %14s %12s %12s\n",
		"Trace", "Policy", "SSD write GB", "vs no-commit", "GC per SSD")
	base := make(map[string]RunResult)
	for _, r := range rows {
		if r.Policy == "no-commit" {
			base[r.Trace] = r.Result
		}
	}
	for _, r := range rows {
		delta := ""
		if r.Policy != "MD" {
			delta = fmt.Sprintf("%+.1f%%", -pct(base[r.Trace].SSDWriteBytes, r.Result.SSDWriteBytes))
		}
		fmt.Fprintf(&b, "%-6s %-12s %14.3f %12s %12.0f\n",
			r.Trace, r.Policy, gb(r.Result.SSDWriteBytes), delta, r.Result.GCPerSSD)
	}
	return b.String()
}

// Exp5Traces reproduces Fig. 11(a): throughput (KIOPS) per trace under
// (6+2)-RAID-6, synchronous (QD=1) replay on the timing models.
func Exp5Traces(scale int64) ([]SchemeRow, error) {
	return runMatrix(trace.ProfileNames(), func(label string, s Scheme) (RunConfig, error) {
		tr, err := loadTrace(label, scale)
		if err != nil {
			return RunConfig{}, err
		}
		return RunConfig{Setting: DefaultSetting(), Scheme: s, Trace: tr, UseSSDSim: true, Timing: true}, nil
	})
}

// Exp5Settings reproduces Fig. 11(b): throughput across settings on FIN.
func Exp5Settings(scale int64) ([]SchemeRow, error) {
	settings := Settings()
	labels := make([]string, len(settings))
	byName := make(map[string]Setting, len(settings))
	for i, s := range settings {
		labels[i] = s.Name
		byName[s.Name] = s
	}
	tr, err := loadTrace("FIN", scale)
	if err != nil {
		return nil, err
	}
	return runMatrix(labels, func(label string, s Scheme) (RunConfig, error) {
		return RunConfig{Setting: byName[label], Scheme: s, Trace: tr, UseSSDSim: true, Timing: true}, nil
	})
}

// FormatThroughput renders Exp 5 rows.
func FormatThroughput(title string, rows []SchemeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %10s %10s %12s %13s %13s\n",
		"Workload", "MD KIOPS", "PL KIOPS", "EPLog KIOPS", "EPLog vs MD", "EPLog vs PL")
	for i := 0; i < len(rows); i += 3 {
		md, pl, ep := rows[i].Result, rows[i+1].Result, rows[i+2].Result
		fmt.Fprintf(&b, "%-14s %10.2f %10.2f %12.2f %+12.1f%% %+12.1f%%\n",
			rows[i].Label, md.KIOPS, pl.KIOPS, ep.KIOPS,
			(ep.KIOPS/md.KIOPS-1)*100, (ep.KIOPS/pl.KIOPS-1)*100)
	}
	return b.String()
}

// Fig6 computes the reliability curves of Figure 6 with the paper's
// parameters (n=10 SSDs, 1/λ'=4 years, µ=10^4/year).
func Fig6() (map[string][]reliability.Fig6Point, error) {
	ratios := make([]float64, 0, 40)
	for r := 1.0; r <= 10.0001; r += 0.25 {
		ratios = append(ratios, r)
	}
	out := make(map[string][]reliability.Fig6Point)
	for _, m := range []int{1, 2} {
		for _, alpha := range []float64{0.3, 0.5, 0.7} {
			pts, err := reliability.Fig6Series(10, m, 0.25, 1e4, alpha, ratios)
			if err != nil {
				return nil, err
			}
			out[fmt.Sprintf("RAID-%d alpha=%.1f", 4+m, alpha)] = pts
		}
	}
	return out, nil
}

// FormatFig6 renders selected points of the Figure 6 curves.
func FormatFig6(series map[string][]reliability.Fig6Point) string {
	var b strings.Builder
	b.WriteString("Figure 6: MTTDL (years) vs λh/λ's — n=10, 1/λ's=4yr, µ=1e4/yr\n")
	keys := []string{
		"RAID-5 alpha=0.3", "RAID-5 alpha=0.5", "RAID-5 alpha=0.7",
		"RAID-6 alpha=0.3", "RAID-6 alpha=0.5", "RAID-6 alpha=0.7",
	}
	for _, k := range keys {
		pts := series[k]
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s (conventional = %.3g):\n", k, pts[0].Conventional)
		for _, p := range pts {
			if p.Ratio == 1 || p.Ratio == 2 || p.Ratio == 4 || p.Ratio == 6 || p.Ratio == 10 {
				fmt.Fprintf(&b, "  λh/λ's=%-4.0f EPLog=%.3g (%.2fx)\n",
					p.Ratio, p.EPLog, p.EPLog/p.Conventional)
			}
		}
		fmt.Fprintf(&b, "  crossover at λh/λ's ≈ %.2f\n", reliability.Crossover(pts))
	}
	return b.String()
}
