package experiments

import (
	"fmt"
	"strings"

	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/hdd"
	"github.com/eplog/eplog/internal/ssd"
	"github.com/eplog/eplog/internal/trace"
)

// RecoveryResult quantifies the paper's third design limitation (Section
// III-A): degraded-mode performance before a parity commit suffers because
// recovery must read log chunks from the (HDD) log devices, while after a
// commit it operates entirely on the main array, like conventional RAID.
type RecoveryResult struct {
	Chunks int64

	// DegradedSweepBefore/After are the virtual seconds needed to read
	// the full logical space with one SSD failed, before and after a
	// parity commit.
	DegradedSweepBefore float64
	DegradedSweepAfter  float64
	// LogReadsBefore/After count log-device chunk reads during those
	// sweeps.
	LogReadsBefore int64
	LogReadsAfter  int64
	// MDSweep is the same degraded sweep on conventional RAID.
	MDSweep float64
}

// ExpRecovery measures degraded-read cost for EPLog before and after
// parity commit, against the MD baseline, under a FIN-derived update
// workload on the timing models.
func ExpRecovery(scale int64) (*RecoveryResult, error) {
	p, err := trace.LookupProfile("FIN")
	if err != nil {
		return nil, err
	}
	tr := p.Scaled(scale).Generate(ChunkSize)
	setting := DefaultSetting()
	n := setting.K + setting.M

	buildSSDs := func(devChunks int64) ([]device.Dev, []*device.Faulty, error) {
		raw := int64(float64(devChunks)/0.85) + 64
		params := ssd.DefaultParams(raw * ChunkSize)
		for int64(float64(params.Blocks*params.PagesPerBlock)*(1-params.OverProvision)) < devChunks {
			params.Blocks++
		}
		devs := make([]device.Dev, n)
		faulty := make([]*device.Faulty, n)
		for i := 0; i < n; i++ {
			d, err := ssd.New(params)
			if err != nil {
				return nil, nil, err
			}
			f := device.NewFaulty(d)
			faulty[i] = f
			devs[i] = f
		}
		return devs, faulty, nil
	}

	cfg := RunConfig{Setting: setting, Scheme: EPLog, Trace: tr}
	stripes, devChunks, logChunks := geometry(cfg)

	// ---- EPLog ----
	devs, faulty, err := buildSSDs(devChunks)
	if err != nil {
		return nil, err
	}
	logs := make([]device.Dev, setting.M)
	logCnt := make([]*device.Counting, setting.M)
	for i := range logs {
		h, err := hdd.New(hdd.DefaultParams(logChunks, ChunkSize))
		if err != nil {
			return nil, err
		}
		c := device.NewCounting(h)
		logCnt[i] = c
		logs[i] = c
	}
	e, err := core.New(devs, logs, core.Config{K: setting.K, Stripes: stripes})
	if err != nil {
		return nil, err
	}
	if err := precondition(e, setting.K, stripes); err != nil {
		return nil, err
	}
	if err := replayWrites(e, tr); err != nil {
		return nil, err
	}

	res := &RecoveryResult{Chunks: e.Chunks()}

	// Each sweep starts at a fresh epoch well past any device-clock
	// backlog from the replay or the commit, so the measured time is the
	// sweep's own.
	epoch := 1e6
	sweep := func() (float64, error) {
		buf := make([]byte, ChunkSize)
		now := epoch
		for lba := int64(0); lba < e.Chunks(); lba++ {
			end, err := e.ReadChunks(now, lba, buf)
			if err != nil {
				return 0, err
			}
			now = end
		}
		epoch += 1e6
		return now - (epoch - 1e6), nil
	}

	faulty[2].Fail()
	logReads0 := logCnt[0].ReadOps() + logCnt[1].ReadOps()
	res.DegradedSweepBefore, err = sweep()
	if err != nil {
		return nil, err
	}
	res.LogReadsBefore = logCnt[0].ReadOps() + logCnt[1].ReadOps() - logReads0
	faulty[2].Repair()

	if err := e.Commit(); err != nil {
		return nil, err
	}

	faulty[2].Fail()
	logReads1 := logCnt[0].ReadOps() + logCnt[1].ReadOps()
	res.DegradedSweepAfter, err = sweep()
	if err != nil {
		return nil, err
	}
	res.LogReadsAfter = logCnt[0].ReadOps() + logCnt[1].ReadOps() - logReads1
	faulty[2].Repair()

	// ---- MD baseline ----
	mdDevs, mdFaulty, err := buildSSDs(devChunks)
	if err != nil {
		return nil, err
	}
	md, err := newMD(mdDevs, setting.K, stripes)
	if err != nil {
		return nil, err
	}
	if err := precondition(md, setting.K, stripes); err != nil {
		return nil, err
	}
	if err := replayWrites(md, tr); err != nil {
		return nil, err
	}
	mdFaulty[2].Fail()
	buf := make([]byte, ChunkSize)
	const mdEpoch = 1e6
	now := mdEpoch
	for lba := int64(0); lba < md.Chunks(); lba++ {
		end, err := md.ReadChunks(now, lba, buf)
		if err != nil {
			return nil, err
		}
		now = end
	}
	res.MDSweep = now - mdEpoch
	return res, nil
}

// FormatRecovery renders the recovery experiment.
func FormatRecovery(r *RecoveryResult) string {
	var b strings.Builder
	b.WriteString("Extension experiment: degraded-read cost around parity commit, (6+2)-RAID-6, FIN updates\n")
	fmt.Fprintf(&b, "full degraded sweep of %d chunks with one SSD failed:\n", r.Chunks)
	fmt.Fprintf(&b, "  %-34s %10.3fs  (%d log-device reads)\n",
		"EPLog before parity commit", r.DegradedSweepBefore, r.LogReadsBefore)
	fmt.Fprintf(&b, "  %-34s %10.3fs  (%d log-device reads)\n",
		"EPLog after parity commit", r.DegradedSweepAfter, r.LogReadsAfter)
	fmt.Fprintf(&b, "  %-34s %10.3fs\n", "conventional RAID (MD)", r.MDSweep)
	fmt.Fprintf(&b, "committing first speeds degraded reads by %.1fx and removes all log-device reads\n",
		r.DegradedSweepBefore/r.DegradedSweepAfter)
	return b.String()
}
