package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/eplog/eplog/internal/obs"
)

// stubSource returns fixed data so handler behavior is tested in isolation.
type stubSource struct{}

func (stubSource) Metrics() obs.Snapshot {
	return obs.Snapshot{
		Counters:   map[string]int64{"core.write": 3},
		Gauges:     map[string]float64{},
		Histograms: map[string]obs.HistogramSnapshot{},
	}
}

func (stubSource) Spans() []obs.SpanSnapshot {
	return []obs.SpanSnapshot{
		{ID: 1, Kind: "write", T: 0.5, Dur: 0.25},
		{ID: 2, Kind: "commit", T: 1, Dur: 2, Cause: "manual"},
	}
}

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServerEndpoints(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, ct, body := get(t, base+"/metrics")
	if code != http.StatusOK || ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics: code %d content-type %q", code, ct)
	}
	if !strings.Contains(body, "eplog_core_write 3") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}

	code, ct, body = get(t, base+"/metrics.json")
	if code != http.StatusOK || ct != "application/json" {
		t.Errorf("/metrics.json: code %d content-type %q", code, ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil || snap.Counters["core.write"] != 3 {
		t.Errorf("/metrics.json body does not round-trip (%v):\n%s", err, body)
	}

	code, ct, body = get(t, base+"/spans")
	if code != http.StatusOK || ct != "application/x-ndjson" {
		t.Errorf("/spans: code %d content-type %q", code, ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("/spans returned %d lines, want 2:\n%s", len(lines), body)
	}
	var span obs.SpanSnapshot
	if err := json.Unmarshal([]byte(lines[1]), &span); err != nil || span.Cause != "manual" {
		t.Errorf("/spans line does not parse (%v): %s", err, lines[1])
	}

	code, _, body = get(t, base+"/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok uptime=") {
		t.Errorf("/healthz: code %d body %q", code, body)
	}

	if code, _, _ = get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}

	if code, _, _ = get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: code %d, want 404", code)
	}
}

func TestServerCloseIsIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", SinkSource(nil))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() == "" {
		t.Error("Addr empty")
	}
	// A nil sink serves empty-but-valid responses.
	if code, _, _ := get(t, "http://"+srv.Addr()+"/metrics"); code != http.StatusOK {
		t.Errorf("nil-sink /metrics: code %d", code)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	client := &http.Client{Timeout: time.Second}
	if _, err := client.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Error("request after Close succeeded")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", stubSource{}); err == nil {
		t.Error("Serve on a bad address did not fail")
	}
}
