// Package telemetry serves EPLog's observability surface over HTTP: an
// opt-in live endpoint a Prometheus scraper (or curl) can hit while a
// soak or experiment runs. It exposes
//
//	/metrics      — the metrics registry in Prometheus text exposition
//	/metrics.json — the same snapshot as indented JSON
//	/spans        — the causal-span flight recorder as JSON Lines, one
//	                complete span tree per line
//	/healthz      — liveness: "ok" plus uptime
//	/debug/pprof/ — the standard Go profiling endpoints
//
// The handlers snapshot on every request — the sink's registry, rings,
// and span recorders carry their own locks — so scraping never blocks
// the engine's hot paths beyond those short critical sections.
package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"github.com/eplog/eplog/internal/obs"
)

// Source supplies the live data a telemetry server exposes. Both methods
// must be safe for concurrent use and return consistent value copies
// (obs.Sink's Snapshot and Spans already are).
type Source interface {
	// Metrics returns a point-in-time metrics snapshot.
	Metrics() obs.Snapshot
	// Spans returns the retained causal span trees, oldest first.
	Spans() []obs.SpanSnapshot
}

// SinkSource adapts an obs.Sink to a Source, for serving telemetry
// straight off a sink (the experiments harness and benches hold sinks,
// not arrays). Nil-safe like the sink itself: a nil sink serves empty
// metrics and spans.
func SinkSource(s *obs.Sink) Source { return sinkSource{s} }

type sinkSource struct{ s *obs.Sink }

func (ss sinkSource) Metrics() obs.Snapshot     { return ss.s.Snapshot() }
func (ss sinkSource) Spans() []obs.SpanSnapshot { return ss.s.Spans() }

// NewHandler returns the telemetry routes on a fresh mux. Use it to
// mount the endpoints on an existing server; Serve wraps it with its own
// listener.
func NewHandler(src Source) http.Handler {
	started := time.Now()
	mux := http.NewServeMux()
	// The snapshot renderers write into a buffer first: an encoding error
	// can still become a clean 500, and a client hanging up mid-scrape is
	// a connection-level failure, not something to report after the status
	// line has gone out.
	serveRendered := func(w http.ResponseWriter, contentType string, render func(io.Writer) error) {
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", contentType)
		_, _ = w.Write(buf.Bytes())
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		serveRendered(w, "text/plain; version=0.0.4; charset=utf-8", src.Metrics().WritePrometheus)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		serveRendered(w, "application/json", src.Metrics().WriteJSON)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		serveRendered(w, "application/x-ndjson", func(out io.Writer) error {
			return obs.WriteSpanJSONL(out, src.Spans())
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime=%s\n", time.Since(started).Round(time.Millisecond))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint. Close shuts it down.
type Server struct {
	ln        net.Listener
	srv       *http.Server
	closeOnce sync.Once
	closeErr  error
}

// Serve starts a telemetry server on addr (e.g. "127.0.0.1:9090", or
// ":0" for an ephemeral port — read the bound address back with Addr).
func Serve(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandler(src)}}
	go func() {
		// ErrServerClosed after Close; anything else surfaces on scrape
		// failure, which the operator notices — no logging dependency.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, closing the listener and any open
// connections. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.srv.Close() })
	return s.closeErr
}
