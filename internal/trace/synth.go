package trace

import (
	"fmt"
	"math/rand"
)

// Profile parameterizes a synthetic workload calibrated to the write
// statistics of one of the paper's traces (Table I). Since the original
// FIN/WEB/USR/MDS traces are licensed data sets, the generators reproduce
// the four statistics the paper reports — request count, mean write size,
// random-write ratio, working-set size — together with the spatial and
// temporal locality the paper's caching experiment depends on.
type Profile struct {
	// Name is the trace label (FIN, WEB, USR, MDS).
	Name string
	// Writes is the number of write requests to generate.
	Writes int64
	// MeanWriteKB is the target mean write size in KB (post-rounding).
	MeanWriteKB float64
	// RandomPct is the target percentage of random writes.
	RandomPct float64
	// WorkingSetMB is the addressable working set in MB; the generator
	// issues writes across exactly this region.
	WorkingSetMB int64
	// NearProb is the probability that a random write re-targets a very
	// recently written location (temporal locality tight enough for the
	// paper's small device buffers to absorb, Experiment 3).
	NearProb float64
	// FarProb is the probability that a random write re-targets an older
	// location (a re-write, so it adds no working-set growth, but too far
	// in the past for a small buffer to catch). The remaining probability
	// mass goes to fresh uniform locations, which is what grows the
	// working set.
	FarProb float64
	// ReuseWindow is how many recent distinct write locations count as
	// "near".
	ReuseWindow int
	// Seed makes generation deterministic.
	Seed int64
}

// Table I of the paper, as generator targets. Near/far reuse splits are
// derived from the paper's own numbers: the fresh fraction matches the
// trace's working-set size over its total write volume, and the near
// fraction matches the write absorption of a 64-chunk-per-SSD device
// buffer in Experiment 3.
var profiles = map[string]Profile{
	"FIN": {Name: "FIN", Writes: 1105563, MeanWriteKB: 7.19, RandomPct: 76.17,
		WorkingSetMB: 5820, NearProb: 0.55, FarProb: 0.00, ReuseWindow: 96, Seed: 101},
	"WEB": {Name: "WEB", Writes: 1431628, MeanWriteKB: 12.50, RandomPct: 77.62,
		WorkingSetMB: 10000, NearProb: 0.53, FarProb: 0.05, ReuseWindow: 96, Seed: 102},
	"USR": {Name: "USR", Writes: 1363855, MeanWriteKB: 10.05, RandomPct: 76.19,
		WorkingSetMB: 2700, NearProb: 0.58, FarProb: 0.23, ReuseWindow: 96, Seed: 103},
	"MDS": {Name: "MDS", Writes: 1069421, MeanWriteKB: 7.22, RandomPct: 82.99,
		WorkingSetMB: 4750, NearProb: 0.56, FarProb: 0.02, ReuseWindow: 96, Seed: 104},
}

// ProfileNames lists the built-in profiles in the paper's order.
func ProfileNames() []string { return []string{"FIN", "WEB", "USR", "MDS"} }

// LookupProfile returns a built-in profile by name.
func LookupProfile(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown profile %q (have %v)", name, ProfileNames())
	}
	return p, nil
}

// Scaled returns a copy of the profile with the request count and working
// set divided by factor, preserving all ratios. It is used to run the
// experiment suite at laptop scale.
func (p Profile) Scaled(factor int64) Profile {
	if factor <= 1 {
		return p
	}
	q := p
	q.Writes = maxI64(p.Writes/factor, 1)
	q.WorkingSetMB = maxI64(p.WorkingSetMB/factor, 1)
	return q
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Generate produces a synthetic trace matching the profile. Every request
// is a write (the paper's replay methodology treats all writes as updates
// of a preconditioned working set); sizes are multiples of chunkSize.
func (p Profile) Generate(chunkSize int) *Trace {
	r := rand.New(rand.NewSource(p.Seed))
	cs := int64(chunkSize)
	spaceChunks := p.WorkingSetMB << 20 / cs
	if spaceChunks < 16 {
		spaceChunks = 16
	}
	sizes := newSizeDist(p.MeanWriteKB*1024/float64(chunkSize), r)

	type extent struct {
		start, n int64
	}
	t := &Trace{Name: p.Name, Requests: make([]Request, 0, p.Writes)}
	recent := make([]extent, 0, p.ReuseWindow)
	recentPos := 0
	// reservoir holds a uniform sample of all past write locations; "far"
	// reuse draws from it to model re-writes whose reuse distance exceeds
	// any small buffer.
	const reservoirCap = 4096
	reservoir := make([]extent, 0, reservoirCap)
	seqProb := 1 - p.RandomPct/100
	var prevEndChunk, seen int64
	var now float64

	for i := int64(0); i < p.Writes; i++ {
		n := sizes.draw(r)
		var startChunk int64
		u := r.Float64()
		switch {
		case i > 0 && r.Float64() < seqProb:
			// Sequential continuation of the previous request.
			startChunk = prevEndChunk
		case u < p.NearProb && len(recent) > 0:
			// Tight temporal locality: overwrite a recently written
			// extent wholesale (hot records are re-written, not
			// partially grazed), which is what lets small write-back
			// buffers absorb them (Experiment 3).
			e := recent[r.Intn(len(recent))]
			startChunk, n = e.start, e.n
		case u < p.NearProb+p.FarProb && len(reservoir) > 0:
			// Distant re-write: overwrite an old extent.
			e := reservoir[r.Intn(len(reservoir))]
			startChunk, n = e.start, e.n
		default:
			// Fresh random location, uniform over the working set.
			startChunk = int64(r.Int63n(spaceChunks))
		}
		// If a "random" pick landed next to the previous request it
		// would count as sequential in Table I terms; redraw fresh so
		// the random-write ratio stays on target.
		if d := (startChunk - prevEndChunk) * cs; i > 0 && d > -RandomThreshold && d < RandomThreshold && startChunk != prevEndChunk {
			startChunk = int64(r.Int63n(spaceChunks))
		}
		if startChunk+n > spaceChunks {
			startChunk = spaceChunks - n
			if startChunk < 0 {
				startChunk, n = 0, spaceChunks
			}
		}
		t.Requests = append(t.Requests, Request{
			Time:   now,
			Op:     OpWrite,
			Offset: startChunk * cs,
			Size:   n * cs,
		})
		now += 0.001
		prevEndChunk = startChunk + n
		// Track recent extents in a ring and all extents in the
		// reservoir sample.
		e := extent{start: startChunk, n: n}
		if len(recent) < p.ReuseWindow {
			recent = append(recent, e)
		} else {
			recent[recentPos] = e
			recentPos = (recentPos + 1) % p.ReuseWindow
		}
		seen++
		if len(reservoir) < reservoirCap {
			reservoir = append(reservoir, e)
		} else if j := r.Int63n(seen); j < reservoirCap {
			reservoir[j] = e
		}
	}
	return t
}

// sizeDist draws request sizes (in chunks) from a geometric-weighted
// mixture over {1, 2, 4, 8, 16} chunks whose decay ratio is solved to hit a
// target mean, giving realistic small-write-dominated size distributions.
type sizeDist struct {
	sizes   []int64
	cumProb []float64
}

func newSizeDist(meanChunks float64, r *rand.Rand) *sizeDist {
	sizes := []int64{1, 2, 4, 8, 16}
	if meanChunks <= 1 {
		return &sizeDist{sizes: []int64{1}, cumProb: []float64{1}}
	}
	if meanChunks >= float64(sizes[len(sizes)-1]) {
		last := sizes[len(sizes)-1]
		return &sizeDist{sizes: []int64{last}, cumProb: []float64{1}}
	}
	mean := func(ratio float64) float64 {
		var wsum, msum float64
		w := 1.0
		for _, s := range sizes {
			wsum += w
			msum += w * float64(s)
			w *= ratio
		}
		return msum / wsum
	}
	// Binary search the decay ratio: mean(ratio) is increasing in ratio
	// (ratios above 1 weight large sizes more heavily).
	lo, hi := 1e-6, 1e3
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if mean(mid) < meanChunks {
			lo = mid
		} else {
			hi = mid
		}
	}
	ratio := (lo + hi) / 2
	d := &sizeDist{sizes: sizes, cumProb: make([]float64, len(sizes))}
	var wsum float64
	w := 1.0
	for range sizes {
		wsum += w
		w *= ratio
	}
	w = 1.0
	acc := 0.0
	for i := range sizes {
		acc += w / wsum
		d.cumProb[i] = acc
		w *= ratio
	}
	d.cumProb[len(sizes)-1] = 1
	return d
}

func (d *sizeDist) draw(r *rand.Rand) int64 {
	u := r.Float64()
	for i, c := range d.cumProb {
		if u <= c {
			return d.sizes[i]
		}
	}
	return d.sizes[len(d.sizes)-1]
}

// SequentialThenUniform reproduces the Experiment 6 workload: sequential
// writes covering regionBytes (stripe creation), followed by updates
// uniform-random 4KB-sized writes across the same region.
func SequentialThenUniform(name string, regionBytes int64, updates int64, chunkSize int, seed int64) *Trace {
	cs := int64(chunkSize)
	chunks := regionBytes / cs
	if chunks < 1 {
		chunks = 1
	}
	r := rand.New(rand.NewSource(seed))
	t := &Trace{Name: name, Requests: make([]Request, 0, chunks+updates)}
	var now float64
	for c := int64(0); c < chunks; c++ {
		t.Requests = append(t.Requests, Request{Time: now, Op: OpWrite, Offset: c * cs, Size: cs})
		now += 0.0001
	}
	for u := int64(0); u < updates; u++ {
		c := int64(r.Intn(int(chunks)))
		t.Requests = append(t.Requests, Request{Time: now, Op: OpWrite, Offset: c * cs, Size: cs})
		now += 0.0001
	}
	return t
}
