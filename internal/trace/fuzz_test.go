package trace

import (
	"strings"
	"testing"
)

// FuzzParseSPC checks the SPC parser never panics and that everything it
// accepts round-trips through WriteSPC.
func FuzzParseSPC(f *testing.F) {
	f.Add("0,20941264,8192,W,0.011413\n")
	f.Add("0,0,0,r,0\n1,1,1,w,1\n")
	f.Add("# comment\n\n0,8,4096,W,1.5\n")
	f.Add("garbage")
	f.Add("0,-5,8192,W,0.1\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ParseSPC("fuzz", strings.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must round-trip when aligned.
		for _, r := range tr.Requests {
			if r.Offset%512 != 0 {
				return
			}
		}
		var buf strings.Builder
		if err := tr.WriteSPC(&buf); err != nil {
			t.Fatalf("WriteSPC of parsed trace: %v", err)
		}
		back, err := ParseSPC("fuzz2", strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if len(back.Requests) != len(tr.Requests) {
			t.Fatalf("round trip changed count: %d -> %d", len(tr.Requests), len(back.Requests))
		}
	})
}

// FuzzParseMSR checks the MSR parser never panics.
func FuzzParseMSR(f *testing.F) {
	f.Add("128166372003061629,web,0,Write,1253376,4096,1331\n")
	f.Add("1,h,0,Read,0,0,0\n")
	f.Add(",,,,,,\n")
	f.Add("nonsense")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ParseMSR("fuzz", strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must have sane invariants.
		for i, r := range tr.Requests {
			if r.Op != OpRead && r.Op != OpWrite {
				t.Fatalf("request %d has invalid op %v", i, r.Op)
			}
		}
		_ = tr.WriteStats(4096)
		_ = tr.Compact(1 << 20)
	})
}
