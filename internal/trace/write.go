package trace

import (
	"bufio"
	"fmt"
	"io"
)

// WriteSPC writes the trace in the SPC-1 Financial format accepted by
// ParseSPC (ASU,LBA,Size,Opcode,Timestamp; LBA in 512-byte sectors).
// Offsets must be sector-aligned.
func (t *Trace) WriteSPC(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, r := range t.Requests {
		if r.Offset%512 != 0 {
			return fmt.Errorf("trace: request %d offset %d not sector aligned", i, r.Offset)
		}
		op := "W"
		if r.Op == OpRead {
			op = "R"
		}
		if _, err := fmt.Fprintf(bw, "0,%d,%d,%s,%.6f\n", r.Offset/512, r.Size, op, r.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMSR writes the trace in the MSR Cambridge CSV format accepted by
// ParseMSR (Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime;
// timestamps in 100ns Windows filetime ticks).
func (t *Trace) WriteMSR(w io.Writer, host string) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Requests {
		op := "Write"
		if r.Op == OpRead {
			op = "Read"
		}
		ticks := int64(r.Time * 1e7)
		if _, err := fmt.Fprintf(bw, "%d,%s,0,%s,%d,%d,0\n", ticks, host, op, r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}
