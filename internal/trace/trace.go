// Package trace provides the I/O workload substrate for the EPLog
// experiments: the request model, parsers for the two public trace formats
// the paper uses (MSR Cambridge CSV and SPC-1 Financial), the address-space
// compaction the paper applies to fit traces onto a small testbed, workload
// statistics (Table I), and synthetic generators calibrated to the paper's
// reported per-trace statistics for use when the original traces are not
// available.
package trace

import (
	"fmt"
	"sort"
)

// Op is the request type.
type Op int

// Request operations.
const (
	OpRead Op = iota + 1
	OpWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Request is a single trace record with byte-granularity offset and size.
type Request struct {
	// Time is seconds since the start of the trace.
	Time float64
	// Op is the request type.
	Op Op
	// Offset is the starting byte offset.
	Offset int64
	// Size is the request length in bytes.
	Size int64
}

// Trace is an ordered sequence of requests.
type Trace struct {
	Name     string
	Requests []Request
}

// RandomThreshold is the distance (bytes) from the previous request's end
// beyond which the paper counts a request as random.
const RandomThreshold = 64 << 10

// Stats summarizes the write behaviour of a trace after rounding request
// sizes up to the chunk size, reproducing the columns of Table I.
type Stats struct {
	// Writes is the total number of write requests.
	Writes int64
	// AvgWriteKB is the mean write size in KB after chunk rounding.
	AvgWriteKB float64
	// RandomPct is the percentage of write requests whose start offset
	// differs from the previous write's end offset by at least 64KB.
	RandomPct float64
	// WorkingSetGB is the total unique data touched by writes, in GB.
	WorkingSetGB float64
}

// WriteStats computes Table I statistics for t using the given chunk size.
func (t *Trace) WriteStats(chunkSize int) Stats {
	var s Stats
	var totalBytes int64
	touched := make(map[int64]struct{})
	prevEnd := int64(-1 << 62)
	for _, r := range t.Requests {
		if r.Op != OpWrite {
			continue
		}
		first, n := ChunkSpan(r.Offset, r.Size, chunkSize)
		size := n * int64(chunkSize)
		s.Writes++
		totalBytes += size
		for c := first; c < first+n; c++ {
			touched[c] = struct{}{}
		}
		dist := r.Offset - prevEnd
		if dist < 0 {
			dist = -dist
		}
		if dist >= RandomThreshold {
			s.RandomPct++
		}
		prevEnd = r.Offset + r.Size
	}
	if s.Writes > 0 {
		s.AvgWriteKB = float64(totalBytes) / float64(s.Writes) / 1024
		s.RandomPct = s.RandomPct / float64(s.Writes) * 100
	}
	s.WorkingSetGB = float64(int64(len(touched))*int64(chunkSize)) / (1 << 30)
	return s
}

// ChunkSpan returns the first chunk index and the chunk count covered by a
// byte range, i.e. the paper's rounding of each request to whole chunks.
func ChunkSpan(offset, size int64, chunkSize int) (first, n int64) {
	if size <= 0 {
		return offset / int64(chunkSize), 0
	}
	cs := int64(chunkSize)
	first = offset / cs
	last := (offset + size - 1) / cs
	return first, last - first + 1
}

// MaxOffset returns the end offset of the furthest-reaching request.
func (t *Trace) MaxOffset() int64 {
	var m int64
	for _, r := range t.Requests {
		if end := r.Offset + r.Size; end > m {
			m = end
		}
	}
	return m
}

// Compact remaps the trace onto a dense address space, reproducing the
// paper's preprocessing: the address space is divided into fixed-size
// segments, unaccessed segments are dropped, and accessed segments are
// shifted down to be contiguous while preserving request order and
// intra-segment offsets.
func (t *Trace) Compact(segmentSize int64) *Trace {
	if segmentSize <= 0 {
		segmentSize = 1 << 20
	}
	// Collect accessed segments. A request may span segments.
	segs := make(map[int64]struct{})
	for _, r := range t.Requests {
		if r.Size <= 0 {
			segs[r.Offset/segmentSize] = struct{}{}
			continue
		}
		for s := r.Offset / segmentSize; s <= (r.Offset+r.Size-1)/segmentSize; s++ {
			segs[s] = struct{}{}
		}
	}
	order := make([]int64, 0, len(segs))
	for s := range segs {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	remap := make(map[int64]int64, len(order))
	for newIdx, old := range order {
		remap[old] = int64(newIdx)
	}
	out := &Trace{Name: t.Name, Requests: make([]Request, len(t.Requests))}
	for i, r := range t.Requests {
		seg := r.Offset / segmentSize
		within := r.Offset % segmentSize
		out.Requests[i] = Request{
			Time:   r.Time,
			Op:     r.Op,
			Offset: remap[seg]*segmentSize + within,
			Size:   r.Size,
		}
	}
	return out
}

// Writes returns the subsequence of write requests.
func (t *Trace) Writes() []Request {
	var w []Request
	for _, r := range t.Requests {
		if r.Op == OpWrite {
			w = append(w, r)
		}
	}
	return w
}
