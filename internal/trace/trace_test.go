package trace

import (
	"math"
	"strings"
	"testing"
)

func TestChunkSpan(t *testing.T) {
	tests := []struct {
		offset, size int64
		chunk        int
		wantFirst    int64
		wantN        int64
	}{
		{0, 4096, 4096, 0, 1},
		{0, 1, 4096, 0, 1},
		{4095, 2, 4096, 0, 2},
		{4096, 4096, 4096, 1, 1},
		{8192, 12288, 4096, 2, 3},
		{100, 0, 4096, 0, 0},
		{5000, 10000, 4096, 1, 3},
	}
	for _, tt := range tests {
		first, n := ChunkSpan(tt.offset, tt.size, tt.chunk)
		if first != tt.wantFirst || n != tt.wantN {
			t.Errorf("ChunkSpan(%d, %d, %d) = (%d, %d), want (%d, %d)",
				tt.offset, tt.size, tt.chunk, first, n, tt.wantFirst, tt.wantN)
		}
	}
}

func TestWriteStats(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Op: OpWrite, Offset: 0, Size: 4096},          // random (first)
		{Op: OpWrite, Offset: 4096, Size: 4096},       // sequential (dist 0)
		{Op: OpRead, Offset: 0, Size: 4096},           // ignored
		{Op: OpWrite, Offset: 10 << 20, Size: 6000},   // random, rounds to 2 chunks
		{Op: OpWrite, Offset: 10<<20 + 6000, Size: 1}, // sequential
	}}
	s := tr.WriteStats(4096)
	if s.Writes != 4 {
		t.Errorf("Writes = %d, want 4", s.Writes)
	}
	// Sizes after rounding: 1+1+2+1 = 5 chunks over 4 writes.
	if want := 5.0 * 4096 / 4 / 1024; math.Abs(s.AvgWriteKB-want) > 1e-9 {
		t.Errorf("AvgWriteKB = %v, want %v", s.AvgWriteKB, want)
	}
	if want := 50.0; math.Abs(s.RandomPct-want) > 1e-9 {
		t.Errorf("RandomPct = %v, want %v", s.RandomPct, want)
	}
	// Unique chunks: 0, 1, 2560, 2561, 2562 (the last request straddles
	// into chunk 2561 only) -> offsets 0,4096 and 10MB area.
	if s.WorkingSetGB <= 0 {
		t.Errorf("WorkingSetGB = %v", s.WorkingSetGB)
	}
}

func TestCompactPreservesOrderAndDensity(t *testing.T) {
	seg := int64(1 << 20)
	tr := &Trace{Requests: []Request{
		{Op: OpWrite, Offset: 5 * seg, Size: 4096},
		{Op: OpWrite, Offset: 100 * seg, Size: 4096},
		{Op: OpWrite, Offset: 5*seg + 8192, Size: 4096},
		{Op: OpWrite, Offset: 100*seg + seg - 100, Size: 200}, // spans into segment 101
	}}
	c := tr.Compact(seg)
	if len(c.Requests) != len(tr.Requests) {
		t.Fatal("request count changed")
	}
	// Accessed segments 5, 100, 101 -> remapped to 0, 1, 2.
	if got := c.Requests[0].Offset; got != 0 {
		t.Errorf("request 0 offset = %d, want 0", got)
	}
	if got := c.Requests[1].Offset; got != seg {
		t.Errorf("request 1 offset = %d, want %d", got, seg)
	}
	if got := c.Requests[2].Offset; got != 8192 {
		t.Errorf("request 2 offset = %d, want 8192", got)
	}
	// The segment-spanning request stays contiguous.
	if got := c.Requests[3].Offset; got != seg+seg-100 {
		t.Errorf("request 3 offset = %d, want %d", got, 2*seg-100)
	}
	if c.MaxOffset() > 3*seg {
		t.Errorf("compacted space %d exceeds 3 segments", c.MaxOffset())
	}
	// Intra-segment distances are preserved for same-segment requests.
	d0 := tr.Requests[2].Offset - tr.Requests[0].Offset
	d1 := c.Requests[2].Offset - c.Requests[0].Offset
	if d0 != d1 {
		t.Errorf("intra-segment distance changed: %d -> %d", d0, d1)
	}
}

func TestCompactDefaultSegment(t *testing.T) {
	tr := &Trace{Requests: []Request{{Op: OpWrite, Offset: 10 << 20, Size: 512}}}
	c := tr.Compact(0)
	if c.Requests[0].Offset != 0 {
		t.Errorf("offset = %d, want 0", c.Requests[0].Offset)
	}
}

func TestParseMSR(t *testing.T) {
	const data = `128166372003061629,web,0,Write,1253376,4096,1331
128166372016382155,web,0,Read,4096,8192,600
128166372026382155,web,0,Write,12288,512,100
`
	tr, err := ParseMSR("web", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 3 {
		t.Fatalf("parsed %d requests, want 3", len(tr.Requests))
	}
	r0 := tr.Requests[0]
	if r0.Op != OpWrite || r0.Offset != 1253376 || r0.Size != 4096 || r0.Time != 0 {
		t.Errorf("request 0 = %+v", r0)
	}
	r1 := tr.Requests[1]
	if r1.Op != OpRead {
		t.Errorf("request 1 op = %v", r1.Op)
	}
	// 100ns ticks: delta 13321... ticks /1e7 -> seconds.
	if want := (128166372016382155.0 - 128166372003061629.0) / 1e7; math.Abs(r1.Time-want) > 1e-6 {
		t.Errorf("request 1 time = %v, want %v", r1.Time, want)
	}
}

func TestParseMSRErrors(t *testing.T) {
	cases := map[string]string{
		"short line": "1,2,3\n",
		"bad ts":     "x,h,0,Write,0,4096,1\n",
		"bad op":     "1,h,0,Flush,0,4096,1\n",
		"bad offset": "1,h,0,Write,x,4096,1\n",
		"bad size":   "1,h,0,Write,0,x,1\n",
	}
	for name, data := range cases {
		if _, err := ParseMSR("t", strings.NewReader(data)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestParseSPC(t *testing.T) {
	const data = `0,20941264,8192,W,0.011413
0,20939840,8192,w,0.011436
1,3436288,15872,r,0.026214
`
	tr, err := ParseSPC("fin", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 3 {
		t.Fatalf("parsed %d requests, want 3", len(tr.Requests))
	}
	if tr.Requests[0].Offset != 20941264*512 || tr.Requests[0].Size != 8192 {
		t.Errorf("request 0 = %+v", tr.Requests[0])
	}
	if tr.Requests[1].Op != OpWrite || tr.Requests[2].Op != OpRead {
		t.Error("opcodes misparsed")
	}
	if tr.Requests[2].Time != 0.026214 {
		t.Errorf("time = %v", tr.Requests[2].Time)
	}
}

func TestParseSPCErrors(t *testing.T) {
	cases := map[string]string{
		"short":   "0,1,2\n",
		"bad lba": "0,x,8192,W,0.1\n",
		"bad sz":  "0,1,x,W,0.1\n",
		"bad op":  "0,1,8192,Q,0.1\n",
		"bad ts":  "0,1,8192,W,x\n",
	}
	for name, data := range cases {
		if _, err := ParseSPC("t", strings.NewReader(data)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestParsersSkipBlanksAndComments(t *testing.T) {
	tr, err := ParseSPC("t", strings.NewReader("\n# comment\n0,1,8192,W,0.1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 1 {
		t.Fatalf("parsed %d requests, want 1", len(tr.Requests))
	}
}

func TestLookupProfile(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := LookupProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Errorf("profile name %q != %q", p.Name, name)
		}
	}
	if _, err := LookupProfile("NOPE"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestProfileScaled(t *testing.T) {
	p, _ := LookupProfile("FIN")
	s := p.Scaled(16)
	if s.Writes != p.Writes/16 || s.WorkingSetMB != p.WorkingSetMB/16 {
		t.Errorf("scaled = %+v", s)
	}
	if same := p.Scaled(1); same.Writes != p.Writes {
		t.Error("Scaled(1) changed the profile")
	}
	tiny := Profile{Writes: 5, WorkingSetMB: 5}.Scaled(100)
	if tiny.Writes < 1 || tiny.WorkingSetMB < 1 {
		t.Error("Scaled floored below 1")
	}
}

// TestGeneratorMatchesTableI verifies the synthetic traces land near the
// paper's reported statistics at reduced scale: request count exact, mean
// size within 5%, random%% within 5 points, working set within 20%.
func TestGeneratorMatchesTableI(t *testing.T) {
	want := map[string]Stats{
		"FIN": {Writes: 1105563, AvgWriteKB: 7.19, RandomPct: 76.17, WorkingSetGB: 3.67},
		"WEB": {Writes: 1431628, AvgWriteKB: 12.50, RandomPct: 77.62, WorkingSetGB: 7.26},
		"USR": {Writes: 1363855, AvgWriteKB: 10.05, RandomPct: 76.19, WorkingSetGB: 2.44},
		"MDS": {Writes: 1069421, AvgWriteKB: 7.22, RandomPct: 82.99, WorkingSetGB: 3.09},
	}
	const scale = 16
	for _, name := range ProfileNames() {
		p, err := LookupProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := p.Scaled(scale).Generate(4096)
		s := tr.WriteStats(4096)
		w := want[name]
		if s.Writes != w.Writes/scale {
			t.Errorf("%s: writes = %d, want %d", name, s.Writes, w.Writes/scale)
		}
		if rel := math.Abs(s.AvgWriteKB-w.AvgWriteKB) / w.AvgWriteKB; rel > 0.05 {
			t.Errorf("%s: avg size %.2fKB vs target %.2fKB (%.1f%% off)", name, s.AvgWriteKB, w.AvgWriteKB, rel*100)
		}
		if math.Abs(s.RandomPct-w.RandomPct) > 5 {
			t.Errorf("%s: random %.2f%% vs target %.2f%%", name, s.RandomPct, w.RandomPct)
		}
		wantWSS := w.WorkingSetGB / scale
		if rel := math.Abs(s.WorkingSetGB-wantWSS) / wantWSS; rel > 0.20 {
			t.Errorf("%s: WSS %.3fGB vs target %.3fGB (%.1f%% off)", name, s.WorkingSetGB, wantWSS, rel*100)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := LookupProfile("FIN")
	p = p.Scaled(256)
	a := p.Generate(4096)
	b := p.Generate(4096)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs between identical generations", i)
		}
	}
}

func TestGeneratorChunkAligned(t *testing.T) {
	p, _ := LookupProfile("MDS")
	tr := p.Scaled(256).Generate(4096)
	space := p.Scaled(256).WorkingSetMB << 20
	for i, r := range tr.Requests {
		if r.Op != OpWrite {
			t.Fatalf("request %d is not a write", i)
		}
		if r.Offset%4096 != 0 || r.Size%4096 != 0 || r.Size == 0 {
			t.Fatalf("request %d not chunk aligned: %+v", i, r)
		}
		if r.Offset+r.Size > space {
			t.Fatalf("request %d exceeds working set: %+v", i, r)
		}
	}
}

func TestSequentialThenUniform(t *testing.T) {
	tr := SequentialThenUniform("meta", 1<<20, 100, 4096, 7)
	seqChunks := int64(1<<20) / 4096
	if int64(len(tr.Requests)) != seqChunks+100 {
		t.Fatalf("requests = %d, want %d", len(tr.Requests), seqChunks+100)
	}
	for i := int64(0); i < seqChunks; i++ {
		if tr.Requests[i].Offset != i*4096 {
			t.Fatalf("sequential phase broken at %d", i)
		}
	}
	for _, r := range tr.Requests[seqChunks:] {
		if r.Size != 4096 || r.Offset < 0 || r.Offset >= 1<<20 {
			t.Fatalf("bad update request %+v", r)
		}
	}
}

func TestSizeDistMean(t *testing.T) {
	// The solved distribution must hit the requested mean in expectation.
	for _, mean := range []float64{1.2, 1.8, 2.5, 3.1, 6.0, 12.0} {
		d := newSizeDist(mean, nil)
		var e float64
		prev := 0.0
		for i, c := range d.cumProb {
			e += float64(d.sizes[i]) * (c - prev)
			prev = c
		}
		if math.Abs(e-mean)/mean > 0.01 {
			t.Errorf("mean %v: distribution expectation %v", mean, e)
		}
	}
	// Degenerate ends.
	if d := newSizeDist(0.5, nil); len(d.sizes) != 1 || d.sizes[0] != 1 {
		t.Error("sub-chunk mean did not degenerate to size 1")
	}
	if d := newSizeDist(100, nil); len(d.sizes) != 1 || d.sizes[0] != 16 {
		t.Error("huge mean did not degenerate to max size")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Error("Op.String mismatch")
	}
	if Op(9).String() == "" {
		t.Error("unknown op produced empty string")
	}
}

func TestWriteSPCRoundTrip(t *testing.T) {
	p, _ := LookupProfile("FIN")
	orig := p.Scaled(1024).Generate(4096)
	var buf strings.Builder
	if err := orig.WriteSPC(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSPC("roundtrip", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(orig.Requests) {
		t.Fatalf("request count %d != %d", len(back.Requests), len(orig.Requests))
	}
	for i := range orig.Requests {
		o, b := orig.Requests[i], back.Requests[i]
		if o.Op != b.Op || o.Offset != b.Offset || o.Size != b.Size {
			t.Fatalf("request %d changed: %+v -> %+v", i, o, b)
		}
	}
	so, sb := orig.WriteStats(4096), back.WriteStats(4096)
	if so != sb {
		t.Fatalf("stats changed: %+v -> %+v", so, sb)
	}
}

func TestWriteSPCRejectsUnaligned(t *testing.T) {
	tr := &Trace{Requests: []Request{{Op: OpWrite, Offset: 100, Size: 512}}}
	var buf strings.Builder
	if err := tr.WriteSPC(&buf); err == nil {
		t.Fatal("unaligned offset accepted")
	}
}

func TestWriteMSRRoundTrip(t *testing.T) {
	orig := &Trace{Requests: []Request{
		{Time: 0, Op: OpWrite, Offset: 4096, Size: 8192},
		{Time: 0.5, Op: OpRead, Offset: 0, Size: 4096},
	}}
	var buf strings.Builder
	if err := orig.WriteMSR(&buf, "host0"); err != nil {
		t.Fatal(err)
	}
	back, err := ParseMSR("roundtrip", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != 2 {
		t.Fatalf("parsed %d requests", len(back.Requests))
	}
	for i := range orig.Requests {
		o, b := orig.Requests[i], back.Requests[i]
		if o.Op != b.Op || o.Offset != b.Offset || o.Size != b.Size {
			t.Fatalf("request %d changed: %+v -> %+v", i, o, b)
		}
	}
	if math.Abs(back.Requests[1].Time-0.5) > 1e-6 {
		t.Fatalf("time changed: %v", back.Requests[1].Time)
	}
}
