package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseMSR reads a trace in the MSR Cambridge block-trace CSV format used
// by the WEB/USR/MDS volumes:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamps are Windows filetime ticks (100ns); they are rebased so the
// first record is at time zero.
func ParseMSR(name string, r io.Reader) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var base float64
	haveBase := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Split(text, ",")
		if len(f) < 6 {
			return nil, fmt.Errorf("trace: %s:%d: want >=6 CSV fields, got %d", name, line, len(f))
		}
		ticks, err := strconv.ParseFloat(f[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: %s:%d: timestamp: %w", name, line, err)
		}
		secs := ticks / 1e7
		if !haveBase {
			base, haveBase = secs, true
		}
		var op Op
		switch strings.ToLower(strings.TrimSpace(f[3])) {
		case "read":
			op = OpRead
		case "write":
			op = OpWrite
		default:
			return nil, fmt.Errorf("trace: %s:%d: unknown op %q", name, line, f[3])
		}
		off, err := strconv.ParseInt(strings.TrimSpace(f[4]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: %s:%d: offset: %w", name, line, err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(f[5]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: %s:%d: size: %w", name, line, err)
		}
		t.Requests = append(t.Requests, Request{Time: secs - base, Op: op, Offset: off, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", name, err)
	}
	return t, nil
}

// ParseSPC reads a trace in the SPC-1 format of the Financial (FIN) traces:
//
//	ASU,LBA,Size,Opcode,Timestamp
//
// where LBA is in 512-byte sectors, Size is in bytes, Opcode is r/R or w/W,
// and Timestamp is seconds since the start of the trace.
func ParseSPC(name string, r io.Reader) (*Trace, error) {
	const sector = 512
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Split(text, ",")
		if len(f) < 5 {
			return nil, fmt.Errorf("trace: %s:%d: want >=5 CSV fields, got %d", name, line, len(f))
		}
		lba, err := strconv.ParseInt(strings.TrimSpace(f[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: %s:%d: lba: %w", name, line, err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(f[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: %s:%d: size: %w", name, line, err)
		}
		var op Op
		switch strings.ToLower(strings.TrimSpace(f[3])) {
		case "r":
			op = OpRead
		case "w":
			op = OpWrite
		default:
			return nil, fmt.Errorf("trace: %s:%d: unknown opcode %q", name, line, f[3])
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(f[4]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: %s:%d: timestamp: %w", name, line, err)
		}
		t.Requests = append(t.Requests, Request{Time: ts, Op: op, Offset: lba * sector, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", name, err)
	}
	return t, nil
}
