// Package paritylog implements the original parity-logging scheme
// (Stodolsky et al., as adapted by the paper's PL baseline): data chunks
// are updated in place on the main array, and instead of updating parity,
// each write appends per-stripe parity deltas ("log chunks") to dedicated
// log devices. A log chunk for parity dimension i of a stripe is the
// parity-coefficient-weighted XOR of the old and new contents of the
// updated chunks, so the write path must pre-read the old data — the
// constraint EPLog's elastic logging removes.
//
// Following the parity-logging literature, each log device is divided into
// per-stripe-group regions so a stripe's deltas stay clustered and commit
// can read them back with sequential I/O. The cost of that organization is
// the one EPLog removes: the append stream hops between regions as
// unrelated stripes are updated, so log-device writes are not globally
// sequential.
//
// Parity commit folds the accumulated deltas into the on-array parity,
// which (unlike EPLog) requires reading the log devices back.
package paritylog

import (
	"errors"
	"fmt"
	"sync"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/erasure"
	"github.com/eplog/eplog/internal/gf"
	"github.com/eplog/eplog/internal/store"
)

// Errors returned by the scheme.
var (
	ErrTooManyFailures = errors.New("paritylog: too many failed devices")
	ErrLogDevices      = errors.New("paritylog: need one log device per parity chunk")
)

// Stats counts scheme-specific I/O.
type Stats struct {
	// PreReadChunks counts old-data chunks read on the write path.
	PreReadChunks int64
	// LogChunks counts log chunks appended across all log devices.
	LogChunks int64
	// LogBytes is the total log traffic.
	LogBytes int64
	// Commits counts full parity-commit operations.
	Commits int64
	// RegionCommits counts per-region reintegrations.
	RegionCommits int64
	// FullStripeWrites counts stripes written directly with parity.
	FullStripeWrites int64
}

// Array is a parity-logging RAID array. It implements store.Store.
// Exported methods serialize on an internal mutex, so an Array is safe
// for concurrent use — keeping the baseline's external contract identical
// to EPLog's for apples-to-apples comparisons.
type Array struct {
	mu      sync.Mutex
	geo     store.Geometry
	code    *erasure.Code
	devs    []device.Dev // main array
	logDevs []device.Dev // one per parity dimension
	csize   int

	// The log devices are split into regions of stripesPerRegion
	// consecutive stripes; regionCursor tracks the next free slot of
	// each region (identical across the m log devices).
	stripesPerRegion int64
	regionCap        int64
	regionCursor     []int64
	pending          int64             // occupied slots across all regions
	logs             map[int64][]int64 // stripe -> absolute slots holding its deltas
	virgin           []bool            // stripe never written: direct path allowed
	stats            Stats
}

// DefaultStripesPerRegion is the log-region granularity: how many
// consecutive stripes share one log region.
const DefaultStripesPerRegion = 64

var _ store.Store = (*Array)(nil)

// New builds a parity-logging array: devs form the main array with k data
// chunks per stripe; logDevs must contain exactly len(devs)-k devices.
func New(devs, logDevs []device.Dev, k int, stripes int64) (*Array, error) {
	if len(devs) < 2 {
		return nil, fmt.Errorf("paritylog: need at least 2 devices, got %d", len(devs))
	}
	geo, err := store.NewGeometry(len(devs), k, stripes)
	if err != nil {
		return nil, err
	}
	if len(logDevs) != geo.M() {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrLogDevices, len(logDevs), geo.M())
	}
	csize := devs[0].ChunkSize()
	for i, d := range append(append([]device.Dev{}, devs...), logDevs...) {
		if d.ChunkSize() != csize {
			return nil, fmt.Errorf("paritylog: device %d chunk size %d != %d", i, d.ChunkSize(), csize)
		}
	}
	for i, d := range devs {
		if d.Chunks() < stripes {
			return nil, fmt.Errorf("paritylog: device %d has %d chunks, need %d", i, d.Chunks(), stripes)
		}
	}
	code, err := erasure.New(k, geo.M(), erasure.Cauchy)
	if err != nil {
		return nil, err
	}
	a := &Array{
		geo:              geo,
		code:             code,
		devs:             devs,
		logDevs:          logDevs,
		csize:            csize,
		stripesPerRegion: DefaultStripesPerRegion,
		logs:             make(map[int64][]int64),
		virgin:           make([]bool, stripes),
	}
	numRegions := (stripes + a.stripesPerRegion - 1) / a.stripesPerRegion
	a.regionCap = logDevs[0].Chunks() / numRegions
	if a.regionCap < 1 {
		return nil, fmt.Errorf("paritylog: log devices too small for %d regions", numRegions)
	}
	a.regionCursor = make([]int64, numRegions)
	for i := range a.virgin {
		a.virgin[i] = true
	}
	return a, nil
}

// regionOf returns the log region of a stripe.
func (a *Array) regionOf(stripe int64) int64 { return stripe / a.stripesPerRegion }

// appendSlot reserves the next log slot for a stripe, reintegrating the
// stripe's region first if it is full. It returns the absolute chunk index
// on every log device.
func (a *Array) appendSlot(stripe int64) (int64, error) {
	r := a.regionOf(stripe)
	if a.regionCursor[r] >= a.regionCap {
		if err := a.commitRegion(r); err != nil {
			return 0, err
		}
	}
	slot := r*a.regionCap + a.regionCursor[r]
	a.regionCursor[r]++
	a.pending++
	return slot, nil
}

// Chunks implements store.Store.
func (a *Array) Chunks() int64 { return a.geo.Chunks() }

// ChunkSize implements store.Store.
func (a *Array) ChunkSize() int { return a.csize }

// Stats returns the scheme counters.
func (a *Array) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// PendingLogChunks returns the number of log-device slots in use, exposed
// for experiments measuring log footprint.
func (a *Array) PendingLogChunks() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pending * int64(a.geo.M())
}

// WriteChunks implements store.Store. Partial-stripe writes pre-read the
// old data (phase 1), then write the new data to the main array while the
// log chunks stream to the log devices (phase 2).
func (a *Array) WriteChunks(start float64, lba int64, data []byte) (float64, error) {
	nChunks := int64(len(data) / a.csize)
	if int(nChunks)*a.csize != len(data) || nChunks == 0 {
		return start, fmt.Errorf("paritylog: data length %d not a positive chunk multiple", len(data))
	}
	if lba < 0 || lba+nChunks > a.geo.Chunks() {
		return start, fmt.Errorf("%w: [%d,%d) of %d", store.ErrWriteTooLarge, lba, lba+nChunks, a.geo.Chunks())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	k, m := a.geo.K, a.geo.M()

	type stripeUpdate struct {
		stripe int64
		slots  []int
		chunks [][]byte
	}
	var ups []stripeUpdate
	for off := int64(0); off < nChunks; {
		s, _ := a.geo.Stripe(lba + off)
		u := stripeUpdate{stripe: s}
		for ; off < nChunks; off++ {
			s2, j2 := a.geo.Stripe(lba + off)
			if s2 != s {
				break
			}
			u.slots = append(u.slots, j2)
			u.chunks = append(u.chunks, data[off*int64(a.csize):(off+1)*int64(a.csize)])
		}
		ups = append(ups, u)
	}

	// Phase 1: pre-read old data for partial-stripe updates and compute
	// the per-stripe parity deltas. Parity, delta and pre-read buffers
	// are arena-backed; the delta/parity buffers are returned after the
	// phase-2 writes, the pre-read scratch before phase 2 begins.
	pre := device.NewSpan(start)
	type stripeLog struct {
		deltas [][]byte // nil for full-stripe writes
		parity [][]byte // set for full-stripe writes
	}
	slogs := make([]stripeLog, len(ups))
	old := bufpool.Default.Get(a.csize)
	xor := bufpool.Default.Get(a.csize)
	defer func() {
		bufpool.Default.Put(old)
		bufpool.Default.Put(xor)
	}()
	for ui, u := range ups {
		home := a.geo.HomeChunk(u.stripe)
		if len(u.slots) == k && a.virgin[u.stripe] {
			// Full new stripe: write data+parity directly, no log.
			// Updates never take this path: their parity state is the
			// on-array parity plus the logged deltas, which a direct
			// parity write would corrupt.
			shards := make([][]byte, k+m)
			for i, ch := range u.chunks {
				shards[u.slots[i]] = ch
			}
			parity := bufpool.Default.GetSlices(make([][]byte, m), a.csize)
			copy(shards[k:], parity)
			if err := a.code.Encode(shards); err != nil {
				bufpool.Default.PutSlices(parity)
				return start, err
			}
			slogs[ui].parity = parity
			a.virgin[u.stripe] = false
			a.stats.FullStripeWrites++
			continue
		}
		a.virgin[u.stripe] = false
		deltas := make([][]byte, m)
		for i := range deltas {
			deltas[i] = bufpool.Default.GetZero(a.csize)
		}
		slogs[ui].deltas = deltas
		for i, j := range u.slots {
			if err := pre.Read(a.devs[a.geo.DataDev(u.stripe, j)], home, old); err != nil {
				if !errors.Is(err, device.ErrFailed) {
					return start, err
				}
				// Degraded pre-read: reconstruct the old value from
				// the surviving chunks and the effective parity.
				pre.ClearErr()
				if derr := a.degradedRead(pre, u.stripe, j, old); derr != nil {
					return start, derr
				}
			}
			a.stats.PreReadChunks++
			copy(xor, old)
			gf.XORSlice(u.chunks[i], xor)
			if err := a.code.UpdateParity(j, xor, deltas); err != nil {
				return start, err
			}
		}
	}
	if pre.Err() != nil {
		return start, pre.Err()
	}

	// Phase 2: in-place data writes in parallel with log appends. Writes
	// to a failed device are skipped: the logged delta keeps the new
	// value recoverable through the effective parity, and Rebuild
	// restores it physically.
	wr := pre.Next()
	for ui, u := range ups {
		home := a.geo.HomeChunk(u.stripe)
		for i, j := range u.slots {
			if err := wr.Write(a.devs[a.geo.DataDev(u.stripe, j)], home, u.chunks[i]); err != nil {
				if !errors.Is(err, device.ErrFailed) {
					return start, err
				}
				wr.ClearErr()
			}
		}
		if slogs[ui].parity != nil {
			for i, p := range slogs[ui].parity {
				if err := wr.Write(a.devs[a.geo.ParityDev(u.stripe, i)], home, p); err != nil {
					if !errors.Is(err, device.ErrFailed) {
						return start, err
					}
					wr.ClearErr()
				}
			}
			continue
		}
		slot, err := a.appendSlot(u.stripe)
		if err != nil {
			return start, err
		}
		for i, d := range slogs[ui].deltas {
			if err := wr.Write(a.logDevs[i], slot, d); err != nil {
				return start, err
			}
			a.stats.LogChunks++
			a.stats.LogBytes += int64(a.csize)
		}
		a.logs[u.stripe] = append(a.logs[u.stripe], slot)
	}
	if wr.Err() != nil {
		return start, wr.Err()
	}
	for i := range slogs {
		bufpool.Default.PutSlices(slogs[i].parity)
		bufpool.Default.PutSlices(slogs[i].deltas)
	}
	return wr.End(), nil
}

// ReadChunks implements store.Store with degraded-mode reconstruction.
func (a *Array) ReadChunks(start float64, lba int64, p []byte) (float64, error) {
	nChunks := int64(len(p) / a.csize)
	if int(nChunks)*a.csize != len(p) || nChunks == 0 {
		return start, fmt.Errorf("paritylog: buffer length %d not a positive chunk multiple", len(p))
	}
	if lba < 0 || lba+nChunks > a.geo.Chunks() {
		return start, fmt.Errorf("%w: [%d,%d) of %d", store.ErrWriteTooLarge, lba, lba+nChunks, a.geo.Chunks())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	span := device.NewSpan(start)
	for off := int64(0); off < nChunks; off++ {
		s, j := a.geo.Stripe(lba + off)
		buf := p[off*int64(a.csize) : (off+1)*int64(a.csize)]
		err := span.Read(a.devs[a.geo.DataDev(s, j)], a.geo.HomeChunk(s), buf)
		if err == nil {
			continue
		}
		if !errors.Is(err, device.ErrFailed) {
			return start, err
		}
		span.ClearErr()
		if err := a.degradedRead(span, s, j, buf); err != nil {
			return start, err
		}
	}
	if span.Err() != nil {
		return start, span.Err()
	}
	return span.End(), nil
}

// effectiveParity reads parity dimension i of a stripe and folds in all
// outstanding log deltas, yielding parity consistent with the current
// in-place data. The returned buffer is arena-owned; the caller Puts it.
func (a *Array) effectiveParity(span *device.Span, stripe int64, dim int) ([]byte, error) {
	out := bufpool.Default.Get(a.csize)
	if err := span.Read(a.devs[a.geo.ParityDev(stripe, dim)], a.geo.HomeChunk(stripe), out); err != nil {
		bufpool.Default.Put(out)
		return nil, err
	}
	buf := bufpool.Default.Get(a.csize)
	defer bufpool.Default.Put(buf)
	for _, slot := range a.logs[stripe] {
		if err := span.Read(a.logDevs[dim], slot, buf); err != nil {
			bufpool.Default.Put(out)
			return nil, err
		}
		gf.XORSlice(buf, out)
	}
	return out, nil
}

// degradedRead reconstructs data slot j of a stripe.
func (a *Array) degradedRead(span *device.Span, stripe int64, slot int, out []byte) error {
	k, m := a.geo.K, a.geo.M()
	home := a.geo.HomeChunk(stripe)
	shards := make([][]byte, k+m)
	defer bufpool.Default.PutSlices(shards)
	for j := 0; j < k; j++ {
		if j == slot {
			continue
		}
		buf := bufpool.Default.Get(a.csize)
		if err := span.Read(a.devs[a.geo.DataDev(stripe, j)], home, buf); err != nil {
			bufpool.Default.Put(buf)
			if !errors.Is(err, device.ErrFailed) {
				return err
			}
			span.ClearErr()
			continue
		}
		shards[j] = buf
	}
	for i := 0; i < m; i++ {
		parity, err := a.effectiveParity(span, stripe, i)
		if err != nil {
			if !errors.Is(err, device.ErrFailed) {
				return err
			}
			span.ClearErr()
			continue
		}
		shards[k+i] = parity
	}
	if err := a.code.ReconstructData(shards); err != nil {
		return fmt.Errorf("%w: %v", ErrTooManyFailures, err)
	}
	copy(out, shards[slot])
	return nil
}

// Commit implements store.Store: it reintegrates every region, folding all
// outstanding log deltas into the on-array parity and releasing the log
// space. Unlike EPLog, this reads the log devices.
func (a *Array) Commit() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.commit()
}

// commit implements Commit with a.mu held; Rebuild uses it too.
func (a *Array) commit() error {
	for r := range a.regionCursor {
		if a.regionCursor[r] == 0 {
			continue
		}
		if err := a.commitRegion(int64(r)); err != nil {
			return err
		}
	}
	a.stats.Commits++
	return nil
}

// commitRegion reintegrates one log region: it sweeps the region's used
// slots sequentially off every log device (the access pattern the regioned
// layout exists for), folds each stripe's deltas into its parity, writes
// the parity back, and releases the region. Parity chunks on failed
// devices are skipped — they are restored by Rebuild.
func (a *Array) commitRegion(region int64) error {
	used := a.regionCursor[region]
	if used == 0 {
		return nil
	}
	m := a.geo.M()
	span := device.NewSpan(0)

	// Sequential sweep of the region on every log device. The delta
	// buffers are arena-backed and returned when the region is done.
	base := region * a.regionCap
	logLost := false
	deltas := make([][][]byte, m) // [dim][slot within region]
	defer func() {
		for i := range deltas {
			bufpool.Default.PutSlices(deltas[i])
		}
	}()
	for i := 0; i < m; i++ {
		deltas[i] = make([][]byte, used)
		for s := int64(0); s < used; s++ {
			buf := bufpool.Default.Get(a.csize)
			if err := span.Read(a.logDevs[i], base+s, buf); err != nil {
				bufpool.Default.Put(buf)
				if errors.Is(err, device.ErrFailed) {
					span.ClearErr()
					bufpool.Default.PutSlices(deltas[i])
					deltas[i] = nil
					logLost = true
					break
				}
				return err
			}
			deltas[i][s] = buf
		}
	}

	lo, hi := region*a.stripesPerRegion, (region+1)*a.stripesPerRegion
	for stripe, slots := range a.logs {
		if stripe < lo || stripe >= hi {
			continue
		}
		home := a.geo.HomeChunk(stripe)
		if logLost {
			// With any log device unreadable the deltas cannot be
			// trusted; reintegrate this stripe by re-encoding every
			// parity dimension directly from the in-place data,
			// which is always current.
			shards := bufpool.Default.GetSlices(make([][]byte, a.geo.K+m), a.csize)
			err := func() error {
				for j := 0; j < a.geo.K; j++ {
					if err := span.Read(a.devs[a.geo.DataDev(stripe, j)], home, shards[j]); err != nil {
						return err
					}
				}
				if err := a.code.Encode(shards); err != nil {
					return err
				}
				for i := 0; i < m; i++ {
					if err := span.Write(a.devs[a.geo.ParityDev(stripe, i)], home, shards[a.geo.K+i]); err != nil {
						if errors.Is(err, device.ErrFailed) {
							span.ClearErr()
							continue
						}
						return err
					}
				}
				return nil
			}()
			bufpool.Default.PutSlices(shards)
			if err != nil {
				return err
			}
			a.pending -= int64(len(slots))
			delete(a.logs, stripe)
			continue
		}
		parity := bufpool.Default.Get(a.csize)
		for i := 0; i < m; i++ {
			if err := span.Read(a.devs[a.geo.ParityDev(stripe, i)], home, parity); err != nil {
				if errors.Is(err, device.ErrFailed) {
					span.ClearErr()
					continue
				}
				bufpool.Default.Put(parity)
				return err
			}
			for _, slot := range slots {
				gf.XORSlice(deltas[i][slot-base], parity)
			}
			if err := span.Write(a.devs[a.geo.ParityDev(stripe, i)], home, parity); err != nil {
				if errors.Is(err, device.ErrFailed) {
					span.ClearErr()
					continue
				}
				bufpool.Default.Put(parity)
				return err
			}
		}
		bufpool.Default.Put(parity)
		a.pending -= int64(len(slots))
		delete(a.logs, stripe)
	}
	a.regionCursor[region] = 0
	a.stats.RegionCommits++
	return nil
}

// RecoverLogDevice rebuilds parity for every stripe with outstanding logs
// directly from the in-place data (used when a log device fails: the
// deltas are lost but the data is current), then replaces the failed log
// device and clears the log state.
func (a *Array) RecoverLogDevice(dim int, replacement device.Dev) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if dim < 0 || dim >= a.geo.M() {
		return fmt.Errorf("paritylog: log device index %d out of range", dim)
	}
	if replacement.ChunkSize() != a.csize {
		return fmt.Errorf("paritylog: replacement chunk size mismatch")
	}
	k, m := a.geo.K, a.geo.M()
	span := device.NewSpan(0)
	shards := bufpool.Default.GetSlices(make([][]byte, k+m), a.csize)
	defer bufpool.Default.PutSlices(shards)
	for stripe := range a.logs {
		home := a.geo.HomeChunk(stripe)
		for j := 0; j < k; j++ {
			if err := span.Read(a.devs[a.geo.DataDev(stripe, j)], home, shards[j]); err != nil {
				return err
			}
		}
		if err := a.code.Encode(shards); err != nil {
			return err
		}
		for i := 0; i < m; i++ {
			if err := span.Write(a.devs[a.geo.ParityDev(stripe, i)], home, shards[k+i]); err != nil {
				return err
			}
		}
	}
	clear(a.logs)
	clear(a.regionCursor)
	a.pending = 0
	a.logDevs[dim] = replacement
	return nil
}

// Rebuild reconstructs a failed main-array device onto a replacement and
// swaps it in. Outstanding deltas are first folded into the surviving
// parity (a parity commit), so the reconstruction works from a uniform
// current state.
func (a *Array) Rebuild(devIdx int, replacement device.Dev) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if devIdx < 0 || devIdx >= a.geo.N {
		return fmt.Errorf("paritylog: device index %d out of range", devIdx)
	}
	if replacement.ChunkSize() != a.csize || replacement.Chunks() < a.geo.Stripes {
		return fmt.Errorf("paritylog: replacement geometry mismatch")
	}
	if err := a.commit(); err != nil {
		return err
	}
	k, m := a.geo.K, a.geo.M()
	span := device.NewSpan(0)
	for s := int64(0); s < a.geo.Stripes; s++ {
		home := a.geo.HomeChunk(s)
		target, isParity := -1, false
		for j := 0; j < k; j++ {
			if a.geo.DataDev(s, j) == devIdx {
				target = j
				break
			}
		}
		if target < 0 {
			for i := 0; i < m; i++ {
				if a.geo.ParityDev(s, i) == devIdx {
					target, isParity = i, true
					break
				}
			}
		}
		if target < 0 {
			continue
		}
		// Every buffer in the table — read or reconstructed — is arena
		// owned; PutSlices at the end of each stripe recycles them all.
		shards := make([][]byte, k+m)
		readShard := func(slot, dev int) error {
			buf := bufpool.Default.Get(a.csize)
			if err := span.Read(a.devs[dev], home, buf); err != nil {
				bufpool.Default.Put(buf)
				if !errors.Is(err, device.ErrFailed) {
					return err
				}
				span.ClearErr()
				return nil
			}
			shards[slot] = buf
			return nil
		}
		err := func() error {
			for j := 0; j < k; j++ {
				if d := a.geo.DataDev(s, j); d != devIdx {
					if err := readShard(j, d); err != nil {
						return err
					}
				}
			}
			for i := 0; i < m; i++ {
				if d := a.geo.ParityDev(s, i); d != devIdx {
					if err := readShard(k+i, d); err != nil {
						return err
					}
				}
			}
			if err := a.code.Reconstruct(shards); err != nil {
				return fmt.Errorf("%w: stripe %d: %v", ErrTooManyFailures, s, err)
			}
			out := shards[target]
			if isParity {
				out = shards[k+target]
			}
			return replacement.WriteChunk(home, out)
		}()
		bufpool.Default.PutSlices(shards)
		if err != nil {
			return err
		}
	}
	a.devs[devIdx] = replacement
	return nil
}

// Verify scrubs the array: every stripe's effective parity (on-array
// parity plus outstanding log deltas) is checked against its data. It
// returns the stripes whose redundancy does not match. Verify reads the
// log devices.
func (a *Array) Verify() ([]int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	k, m := a.geo.K, a.geo.M()
	span := device.NewSpan(0)
	var bad []int64
	// One table for the whole scrub: the k data buffers are reused across
	// stripes, while the effective-parity buffers (arena owned, returned by
	// effectiveParity) are recycled after each stripe's check.
	shards := make([][]byte, k+m)
	bufpool.Default.GetSlices(shards[:k], a.csize)
	defer func() { bufpool.Default.PutSlices(shards) }()
	for s := int64(0); s < a.geo.Stripes; s++ {
		home := a.geo.HomeChunk(s)
		for j := 0; j < k; j++ {
			if err := span.Read(a.devs[a.geo.DataDev(s, j)], home, shards[j]); err != nil {
				return nil, fmt.Errorf("paritylog: verify stripe %d slot %d: %w", s, j, err)
			}
		}
		for i := 0; i < m; i++ {
			parity, err := a.effectiveParity(span, s, i)
			if err != nil {
				return nil, fmt.Errorf("paritylog: verify stripe %d parity %d: %w", s, i, err)
			}
			shards[k+i] = parity
		}
		ok, err := a.code.Verify(shards)
		bufpool.Default.PutSlices(shards[k:])
		if err != nil {
			return nil, err
		}
		if !ok {
			bad = append(bad, s)
		}
	}
	return bad, nil
}
