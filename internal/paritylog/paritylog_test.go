package paritylog

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/eplog/eplog/internal/device"
)

const (
	testChunk   = 64
	testStripes = 24
	logChunks   = 4096
)

func newTestArray(t *testing.T, n, k int) (*Array, []*device.Faulty, []*device.Faulty) {
	t.Helper()
	devs := make([]device.Dev, n)
	fmain := make([]*device.Faulty, n)
	for i := range devs {
		f := device.NewFaulty(device.NewMem(testStripes, testChunk))
		fmain[i] = f
		devs[i] = f
	}
	m := n - k
	logs := make([]device.Dev, m)
	flogs := make([]*device.Faulty, m)
	for i := range logs {
		f := device.NewFaulty(device.NewMem(logChunks, testChunk))
		flogs[i] = f
		logs[i] = f
	}
	a, err := New(devs, logs, k, testStripes)
	if err != nil {
		t.Fatal(err)
	}
	return a, fmain, flogs
}

func chunkData(seed, n int) []byte {
	r := rand.New(rand.NewSource(int64(seed)))
	p := make([]byte, n*testChunk)
	r.Read(p)
	return p
}

// precondition fills the array with full-stripe writes.
func precondition(t *testing.T, a *Array, seed int) []byte {
	t.Helper()
	data := chunkData(seed, int(a.Chunks()))
	if _, err := a.WriteChunks(0, 0, data); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestNewValidation(t *testing.T) {
	mkDevs := func(n int) []device.Dev {
		devs := make([]device.Dev, n)
		for i := range devs {
			devs[i] = device.NewMem(testStripes, testChunk)
		}
		return devs
	}
	if _, err := New(mkDevs(1), mkDevs(1), 1, testStripes); err == nil {
		t.Error("single main device accepted")
	}
	if _, err := New(mkDevs(5), mkDevs(2), 4, testStripes); err == nil {
		t.Error("wrong log device count accepted")
	}
	if _, err := New(mkDevs(5), []device.Dev{device.NewMem(4, 32)}, 4, testStripes); err == nil {
		t.Error("mismatched log chunk size accepted")
	}
	if _, err := New(mkDevs(5), mkDevs(1)[:1], 4, testStripes*100); err == nil {
		t.Error("too many stripes accepted")
	}
	if _, err := New(mkDevs(5), mkDevs(5)[:1], 4, testStripes); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestUpdatesPreReadAndLog(t *testing.T) {
	a, _, _ := newTestArray(t, 5, 4)
	precondition(t, a, 1)
	before := a.Stats()
	// Update 2 chunks in one stripe -> 2 pre-reads, 1 log chunk (m=1).
	if _, err := a.WriteChunks(0, 0, chunkData(2, 2)); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.PreReadChunks-before.PreReadChunks != 2 {
		t.Errorf("pre-reads = %d, want 2", s.PreReadChunks-before.PreReadChunks)
	}
	if s.LogChunks-before.LogChunks != 1 {
		t.Errorf("log chunks = %d, want 1", s.LogChunks-before.LogChunks)
	}
}

func TestPerStripeLogging(t *testing.T) {
	// A cross-stripe update generates one log chunk per touched stripe
	// per parity dimension — the constraint elastic logging removes.
	a, _, _ := newTestArray(t, 6, 4) // RAID-6: m=2
	precondition(t, a, 3)
	before := a.Stats()
	// Chunks 2..5 span stripes 0 (slots 2,3) and 1 (slots 0,1).
	if _, err := a.WriteChunks(0, 2, chunkData(4, 4)); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if got := s.LogChunks - before.LogChunks; got != 4 {
		t.Errorf("log chunks = %d, want 4 (2 stripes x 2 parity dims)", got)
	}
	if got := s.PreReadChunks - before.PreReadChunks; got != 4 {
		t.Errorf("pre-reads = %d, want 4", got)
	}
}

func TestReadBack(t *testing.T) {
	a, _, _ := newTestArray(t, 5, 4)
	data := precondition(t, a, 5)
	upd := chunkData(6, 3)
	if _, err := a.WriteChunks(0, 7, upd); err != nil {
		t.Fatal(err)
	}
	copy(data[7*testChunk:], upd)
	got := make([]byte, len(data))
	if _, err := a.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back mismatched")
	}
}

func TestDegradedReadBeforeCommit(t *testing.T) {
	// The defining property: after in-place updates with parity still
	// un-committed, a failed device must be recoverable via old parity
	// plus the logged deltas.
	for _, nk := range [][2]int{{5, 4}, {6, 4}} {
		a, fmain, _ := newTestArray(t, nk[0], nk[1])
		data := precondition(t, a, 7)
		r := rand.New(rand.NewSource(8))
		for i := 0; i < 60; i++ {
			nC := 1 + r.Intn(3)
			lba := int64(r.Intn(int(a.Chunks()) - nC))
			upd := chunkData(100+i, nC)
			if _, err := a.WriteChunks(0, lba, upd); err != nil {
				t.Fatal(err)
			}
			copy(data[lba*testChunk:], upd)
		}
		for d := 0; d < nk[0]; d++ {
			fmain[d].Fail()
			got := make([]byte, len(data))
			if _, err := a.ReadChunks(0, 0, got); err != nil {
				t.Fatalf("n=%d k=%d dev %d: %v", nk[0], nk[1], d, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("n=%d k=%d dev %d: degraded read mismatch", nk[0], nk[1], d)
			}
			fmain[d].Repair()
		}
	}
}

func TestRAID6DegradedTwoFailuresBeforeCommit(t *testing.T) {
	a, fmain, _ := newTestArray(t, 6, 4)
	data := precondition(t, a, 9)
	upd := chunkData(10, 5)
	if _, err := a.WriteChunks(0, 3, upd); err != nil {
		t.Fatal(err)
	}
	copy(data[3*testChunk:], upd)
	fmain[0].Fail()
	fmain[3].Fail()
	got := make([]byte, len(data))
	if _, err := a.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("two-failure degraded read mismatched")
	}
}

func TestCommitFoldsDeltasAndFreesLog(t *testing.T) {
	a, fmain, _ := newTestArray(t, 5, 4)
	data := precondition(t, a, 11)
	upd := chunkData(12, 4)
	if _, err := a.WriteChunks(0, 2, upd); err != nil {
		t.Fatal(err)
	}
	copy(data[2*testChunk:], upd)
	if a.PendingLogChunks() == 0 {
		t.Fatal("no pending log chunks before commit")
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if a.PendingLogChunks() != 0 {
		t.Error("log space not freed by commit")
	}
	// After commit, degraded reads work with plain parity (no deltas).
	fmain[1].Fail()
	got := make([]byte, len(data))
	if _, err := a.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-commit degraded read mismatched")
	}
}

func TestLogDeviceFullTriggersCommit(t *testing.T) {
	// Tiny log device: every update logs one chunk; capacity 4 forces
	// an automatic commit.
	devs := make([]device.Dev, 5)
	for i := range devs {
		devs[i] = device.NewMem(testStripes, testChunk)
	}
	logs := []device.Dev{device.NewMem(4, testChunk)}
	a, err := New(devs, logs, 4, testStripes)
	if err != nil {
		t.Fatal(err)
	}
	precondition(t, a, 13)
	for i := 0; i < 10; i++ {
		if _, err := a.WriteChunks(0, int64(i%8), chunkData(200+i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Stats().RegionCommits == 0 {
		t.Error("full log region did not trigger a reintegration")
	}
}

func TestRebuildAfterUpdates(t *testing.T) {
	a, fmain, _ := newTestArray(t, 6, 4)
	data := precondition(t, a, 14)
	upd := chunkData(15, 6)
	if _, err := a.WriteChunks(0, 1, upd); err != nil {
		t.Fatal(err)
	}
	copy(data[testChunk:], upd)
	fmain[2].Fail()
	if err := a.Rebuild(2, device.NewMem(testStripes, testChunk)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := a.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read after rebuild mismatched")
	}
	// Further updates and degraded reads still work.
	upd2 := chunkData(16, 2)
	if _, err := a.WriteChunks(0, 9, upd2); err != nil {
		t.Fatal(err)
	}
	copy(data[9*testChunk:], upd2)
	fmain[5].Fail()
	if _, err := a.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read after rebuild mismatched")
	}
}

func TestRecoverLogDevice(t *testing.T) {
	a, _, flogs := newTestArray(t, 5, 4)
	data := precondition(t, a, 17)
	upd := chunkData(18, 3)
	if _, err := a.WriteChunks(0, 4, upd); err != nil {
		t.Fatal(err)
	}
	copy(data[4*testChunk:], upd)
	// Log device dies with outstanding deltas.
	flogs[0].Fail()
	if err := a.RecoverLogDevice(0, device.NewMem(logChunks, testChunk)); err != nil {
		t.Fatal(err)
	}
	if a.PendingLogChunks() != 0 {
		t.Error("log state not cleared after log-device recovery")
	}
	// Parity was re-encoded from data: a main-device failure is again
	// tolerable.
	fm := a.devs[1].(*device.Faulty)
	fm.Fail()
	got := make([]byte, len(data))
	if _, err := a.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read after log recovery mismatched")
	}
}

func TestRecoverLogDeviceValidation(t *testing.T) {
	a, _, _ := newTestArray(t, 5, 4)
	if err := a.RecoverLogDevice(1, device.NewMem(logChunks, testChunk)); err == nil {
		t.Error("out-of-range log index accepted")
	}
	if err := a.RecoverLogDevice(0, device.NewMem(logChunks, 32)); err == nil {
		t.Error("mismatched chunk size accepted")
	}
}

func TestFullStripeWritesSkipLog(t *testing.T) {
	a, _, _ := newTestArray(t, 5, 4)
	before := a.Stats()
	if _, err := a.WriteChunks(0, 0, chunkData(19, 4)); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.FullStripeWrites != before.FullStripeWrites+1 {
		t.Error("aligned write did not take the full-stripe path")
	}
	if s.LogChunks != before.LogChunks || s.PreReadChunks != before.PreReadChunks {
		t.Error("full-stripe write logged or pre-read")
	}
}

func TestWriteValidation(t *testing.T) {
	a, _, _ := newTestArray(t, 5, 4)
	if _, err := a.WriteChunks(0, 0, make([]byte, 10)); err == nil {
		t.Error("non-chunk write accepted")
	}
	if _, err := a.WriteChunks(0, a.Chunks(), make([]byte, testChunk)); err == nil {
		t.Error("overflow accepted")
	}
	if _, err := a.ReadChunks(0, 0, make([]byte, 10)); err == nil {
		t.Error("bad read buffer accepted")
	}
	if _, err := a.ReadChunks(0, a.Chunks(), make([]byte, testChunk)); err == nil {
		t.Error("read overflow accepted")
	}
}

func TestVerifyWithOutstandingDeltas(t *testing.T) {
	a, _, _ := newTestArray(t, 5, 4)
	precondition(t, a, 30)
	// Updates leave parity stale on-array; Verify must fold the deltas
	// and still report consistency.
	if _, err := a.WriteChunks(0, 2, chunkData(31, 3)); err != nil {
		t.Fatal(err)
	}
	bad, err := a.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("consistent array failed scrub: %v", bad)
	}
	// Corrupt a data chunk silently.
	if err := a.devs[a.geo.DataDev(1, 0)].WriteChunk(1, chunkData(32, 1)); err != nil {
		t.Fatal(err)
	}
	bad, err = a.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != 1 {
		t.Fatalf("scrub found %v, want [1]", bad)
	}
}

// TestCommitWithFailedLogDevice: reintegration with an unreadable log
// device must fall back to re-encoding parity from data, not silently
// leave parity stale.
func TestCommitWithFailedLogDevice(t *testing.T) {
	a, fmain, flogs := newTestArray(t, 5, 4)
	data := precondition(t, a, 40)
	upd := chunkData(41, 3)
	if _, err := a.WriteChunks(0, 4, upd); err != nil {
		t.Fatal(err)
	}
	copy(data[4*testChunk:], upd)
	flogs[0].Fail()
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if a.PendingLogChunks() != 0 {
		t.Error("commit left pending chunks")
	}
	// Parity must be consistent despite the lost deltas: a main-device
	// failure is tolerable.
	fmain[1].Fail()
	got := make([]byte, len(data))
	if _, err := a.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read after log-failed commit mismatched")
	}
	bad, err := a.Verify()
	if err == nil && len(bad) != 0 {
		t.Fatalf("scrub found stale parity: %v", bad)
	}
}
