package metadata

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/eplog/eplog/internal/device"
)

// Volume layout (in device chunks):
//
//	chunk 0:                superblock
//	chunks [1, 1+F):        full-checkpoint sub-area A
//	chunks [1+F, 1+2F):     full-checkpoint sub-area B
//	chunks [1+2F, end):     incremental-checkpoint area (append-only)
//
// where F is the per-sub-area size chosen at Format time. Full checkpoints
// alternate between A and B with increasing sequence numbers so that a
// crash mid-checkpoint always leaves the previous checkpoint intact; each
// checkpoint and each incremental record is framed with a CRC32C-protected
// header.

const (
	superMagic  = 0x45504c4f // "EPLO"
	frameMagic  = 0x4d455441 // "META"
	superSize   = 40
	frameHeader = 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the volume.
var (
	ErrNotFormatted = errors.New("metadata: volume not formatted")
	ErrNoCheckpoint = errors.New("metadata: no valid full checkpoint")
	ErrTooLarge     = errors.New("metadata: payload exceeds area")
)

// Volume is a persistent metadata store on a (typically mirrored) device.
type Volume struct {
	dev       device.Dev
	csize     int
	fullArea  int64 // chunks per full-checkpoint sub-area
	incrStart int64 // first chunk of the incremental area
	incrEnd   int64 // one past the last incremental chunk

	lastFullSeq uint64 // sequence of the newest durable full checkpoint
	lastFullSub int    // which sub-area holds it (0=A, 1=B)
	incrCursor  int64  // next free incremental chunk
	incrSeq     uint64 // records appended since the last full checkpoint
}

// Format initializes a metadata volume on dev, giving each of the two
// full-checkpoint sub-areas fullAreaChunks chunks and the remainder to the
// incremental area.
func Format(dev device.Dev, fullAreaChunks int64) (*Volume, error) {
	csize := dev.ChunkSize()
	if csize < superSize {
		return nil, fmt.Errorf("metadata: chunk size %d too small for superblock", csize)
	}
	if fullAreaChunks < 1 {
		return nil, fmt.Errorf("metadata: full area must be at least 1 chunk")
	}
	incrStart := 1 + 2*fullAreaChunks
	if incrStart+1 > dev.Chunks() {
		return nil, fmt.Errorf("metadata: device too small: %d chunks, need > %d", dev.Chunks(), incrStart)
	}
	sb := make([]byte, csize)
	binary.LittleEndian.PutUint32(sb[0:], superMagic)
	binary.LittleEndian.PutUint32(sb[4:], 1) // layout version
	binary.LittleEndian.PutUint64(sb[8:], uint64(fullAreaChunks))
	binary.LittleEndian.PutUint64(sb[16:], uint64(incrStart))
	binary.LittleEndian.PutUint64(sb[24:], uint64(dev.Chunks()))
	binary.LittleEndian.PutUint32(sb[32:], crc32.Checksum(sb[:32], crcTable))
	if err := dev.WriteChunk(0, sb); err != nil {
		return nil, fmt.Errorf("metadata: write superblock: %w", err)
	}
	v := &Volume{
		dev:       dev,
		csize:     csize,
		fullArea:  fullAreaChunks,
		incrStart: incrStart,
		incrEnd:   dev.Chunks(),
	}
	v.lastFullSub = -1
	v.incrCursor = incrStart
	// Invalidate any stale checkpoint frames from a previous life.
	zero := make([]byte, csize)
	if err := dev.WriteChunk(v.subAreaStart(0), zero); err != nil {
		return nil, err
	}
	if err := dev.WriteChunk(v.subAreaStart(1), zero); err != nil {
		return nil, err
	}
	if err := dev.WriteChunk(v.incrStart, zero); err != nil {
		return nil, err
	}
	return v, nil
}

// Open mounts an existing metadata volume, locating the newest valid full
// checkpoint and the end of the incremental log.
func Open(dev device.Dev) (*Volume, error) {
	csize := dev.ChunkSize()
	sb := make([]byte, csize)
	if err := dev.ReadChunk(0, sb); err != nil {
		return nil, fmt.Errorf("metadata: read superblock: %w", err)
	}
	if binary.LittleEndian.Uint32(sb[0:]) != superMagic {
		return nil, ErrNotFormatted
	}
	if got, want := binary.LittleEndian.Uint32(sb[32:]), crc32.Checksum(sb[:32], crcTable); got != want {
		return nil, fmt.Errorf("metadata: superblock CRC mismatch")
	}
	v := &Volume{
		dev:       dev,
		csize:     csize,
		fullArea:  int64(binary.LittleEndian.Uint64(sb[8:])),
		incrStart: int64(binary.LittleEndian.Uint64(sb[16:])),
		incrEnd:   int64(binary.LittleEndian.Uint64(sb[24:])),
	}
	if v.incrEnd > dev.Chunks() {
		v.incrEnd = dev.Chunks()
	}
	// Find the newest valid full checkpoint.
	v.lastFullSub = -1
	for sub := 0; sub < 2; sub++ {
		if _, seq, ok := v.readFrameAt(v.subAreaStart(sub), v.fullArea); ok {
			if v.lastFullSub < 0 || seq > v.lastFullSeq {
				v.lastFullSeq = seq
				v.lastFullSub = sub
			}
		}
	}
	// Find the end of the incremental log.
	v.incrCursor = v.incrStart
	for v.incrCursor < v.incrEnd {
		payload, seq, ok := v.readFrameAt(v.incrCursor, v.incrEnd-v.incrCursor)
		if !ok || v.lastFullSub < 0 || seq != v.lastFullSeq {
			break
		}
		v.incrCursor += frameChunks(len(payload), v.csize)
		v.incrSeq++
	}
	return v, nil
}

// subAreaStart returns the first chunk of a full-checkpoint sub-area.
func (v *Volume) subAreaStart(sub int) int64 { return 1 + int64(sub)*v.fullArea }

// frameChunks returns how many chunks a framed payload occupies.
func frameChunks(payloadLen, csize int) int64 {
	total := frameHeader + payloadLen
	return int64((total + csize - 1) / csize)
}

// writeFrameAt writes a framed, checksummed payload starting at chunk
// start; it must fit within limit chunks.
func (v *Volume) writeFrameAt(start, limit int64, seq uint64, payload []byte) error {
	need := frameChunks(len(payload), v.csize)
	if need > limit {
		return fmt.Errorf("%w: %d chunks > %d", ErrTooLarge, need, limit)
	}
	buf := make([]byte, need*int64(v.csize))
	binary.LittleEndian.PutUint32(buf[0:], frameMagic)
	binary.LittleEndian.PutUint64(buf[4:], seq)
	binary.LittleEndian.PutUint64(buf[12:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:], crc32.Checksum(payload, crcTable))
	// buf[24:28] reserved.
	copy(buf[frameHeader:], payload)
	// Write payload chunks first and the header chunk last, so a torn
	// write cannot yield a header that frames garbage.
	for c := need - 1; c >= 0; c-- {
		if err := v.dev.WriteChunk(start+c, buf[c*int64(v.csize):(c+1)*int64(v.csize)]); err != nil {
			return err
		}
	}
	return nil
}

// readFrameAt reads and validates a framed payload at chunk start.
func (v *Volume) readFrameAt(start, limit int64) ([]byte, uint64, bool) {
	if limit < 1 {
		return nil, 0, false
	}
	head := make([]byte, v.csize)
	if err := v.dev.ReadChunk(start, head); err != nil {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint32(head[0:]) != frameMagic {
		return nil, 0, false
	}
	seq := binary.LittleEndian.Uint64(head[4:])
	plen := binary.LittleEndian.Uint64(head[12:])
	// No real checkpoint payload is empty; an all-zero body after a stray
	// magic word must not validate (CRC32 of nothing is zero).
	if plen == 0 || plen > uint64(limit*int64(v.csize)) {
		return nil, 0, false
	}
	want := binary.LittleEndian.Uint32(head[20:])
	need := frameChunks(int(plen), v.csize)
	if need > limit {
		return nil, 0, false
	}
	buf := make([]byte, need*int64(v.csize))
	copy(buf, head)
	for c := int64(1); c < need; c++ {
		if err := v.dev.ReadChunk(start+c, buf[c*int64(v.csize):(c+1)*int64(v.csize)]); err != nil {
			return nil, 0, false
		}
	}
	payload := buf[frameHeader : frameHeader+int(plen)]
	if crc32.Checksum(payload, crcTable) != want {
		return nil, 0, false
	}
	return payload, seq, true
}

// WriteFull persists a full checkpoint into the sub-area not holding the
// current one, then adopts it and resets the incremental log.
func (v *Volume) WriteFull(s *Snapshot) error {
	payload := s.Marshal()
	sub := 0
	if v.lastFullSub == 0 {
		sub = 1
	}
	seq := v.lastFullSeq + 1
	if err := v.writeFrameAt(v.subAreaStart(sub), v.fullArea, seq, payload); err != nil {
		return err
	}
	v.lastFullSeq = seq
	v.lastFullSub = sub
	v.incrCursor = v.incrStart
	v.incrSeq = 0
	// Invalidate the first stale incremental frame so Load stops there.
	zero := make([]byte, v.csize)
	return v.dev.WriteChunk(v.incrStart, zero)
}

// WriteIncremental appends an incremental checkpoint holding the metadata
// dirtied since the last full or incremental checkpoint.
func (v *Volume) WriteIncremental(d *Delta) error {
	if v.lastFullSub < 0 {
		return ErrNoCheckpoint
	}
	payload := d.Marshal()
	if err := v.writeFrameAt(v.incrCursor, v.incrEnd-v.incrCursor, v.lastFullSeq, payload); err != nil {
		return err
	}
	v.incrCursor += frameChunks(len(payload), v.csize)
	v.incrSeq++
	// Invalidate the next slot so a stale frame from a previous epoch
	// cannot be replayed past the new tail.
	if v.incrCursor < v.incrEnd {
		zero := make([]byte, v.csize)
		if err := v.dev.WriteChunk(v.incrCursor, zero); err != nil {
			return err
		}
	}
	return nil
}

// Load returns the newest full checkpoint with all valid incremental
// checkpoints already applied.
func (v *Volume) Load() (*Snapshot, error) {
	if v.lastFullSub < 0 {
		return nil, ErrNoCheckpoint
	}
	payload, _, ok := v.readFrameAt(v.subAreaStart(v.lastFullSub), v.fullArea)
	if !ok {
		return nil, ErrNoCheckpoint
	}
	snap, err := UnmarshalSnapshot(payload)
	if err != nil {
		return nil, err
	}
	cursor := v.incrStart
	for cursor < v.incrEnd {
		p, seq, ok := v.readFrameAt(cursor, v.incrEnd-cursor)
		if !ok || seq != v.lastFullSeq {
			break
		}
		delta, err := UnmarshalDelta(p)
		if err != nil {
			break // torn tail: stop at the last consistent state
		}
		snap.Apply(delta)
		cursor += frameChunks(len(p), v.csize)
	}
	return snap, nil
}

// HasCheckpoint reports whether a valid full checkpoint exists.
func (v *Volume) HasCheckpoint() bool { return v.lastFullSub >= 0 }

// IncrementalCount returns the number of incremental checkpoints since the
// last full checkpoint.
func (v *Volume) IncrementalCount() uint64 { return v.incrSeq }
