// Package metadata implements EPLog's persistent metadata management
// (Section III-E): data-stripe and log-stripe records, a metadata volume
// with a superblock area, a dual-sub-area full-checkpoint region written
// alternately so a consistent full checkpoint always survives a crash, and
// an append-only incremental-checkpoint region holding the records dirtied
// since the last checkpoint.
package metadata

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Loc addresses a chunk on the main array (mirrors core.Loc without
// importing it, keeping this package dependency-free).
type Loc struct {
	Dev   int32
	Chunk int64
}

// StripeRecord is the persistent per-data-stripe metadata: the latest and
// committed location of every data slot, the protector of the latest
// version, and whether the stripe was ever written.
type StripeRecord struct {
	Stripe int64
	// Latest[j] is the location of slot j's newest version.
	Latest []Loc
	// Prot[j] is the protector of slot j's newest version: -1 when the
	// data stripe's parity covers it, otherwise a log stripe id.
	Prot []int64
	// Committed[j] is the location of slot j's parity-covered version.
	Committed []Loc
	// Virgin records that the stripe has never been written.
	Virgin bool
	// Dirty records that the stripe has updates pending parity commit.
	Dirty bool
}

// Member is one data chunk version protected by a log stripe.
type Member struct {
	LBA int64
	Loc Loc
}

// LogStripeRecord is the persistent per-log-stripe metadata: its id, its
// members in coding order, and the log-device offset of its log chunks.
type LogStripeRecord struct {
	ID      int64
	LogPos  int64
	Members []Member
}

// Snapshot is a complete metadata image (a full checkpoint payload).
type Snapshot struct {
	K          int32
	N          int32
	Stripes    int64
	ChunkSize  int32
	NextLogID  int64
	LogCursor  int64
	StripeRecs []StripeRecord
	LogStripes []LogStripeRecord
}

// Delta is an incremental checkpoint payload: the stripe records dirtied
// since the last checkpoint plus the complete current log-stripe set and
// cursors (the log-stripe set is naturally small — it empties on every
// parity commit).
type Delta struct {
	NextLogID  int64
	LogCursor  int64
	StripeRecs []StripeRecord
	LogStripes []LogStripeRecord
}

// Serialization uses little-endian fixed-width fields via a simple
// writer/reader pair; every top-level payload is framed and checksummed by
// the volume layer.

type writer struct{ buf bytes.Buffer }

func (w *writer) u32(v uint32) { _ = binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) i64(v int64)  { _ = binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *writer) boolean(v bool) {
	if v {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}
func (w *writer) loc(l Loc) { w.i32(l.Dev); w.i64(l.Chunk) }

type reader struct {
	buf *bytes.Reader
	err error
}

func (r *reader) u32() uint32 {
	var v uint32
	if r.err == nil {
		r.err = binary.Read(r.buf, binary.LittleEndian, &v)
	}
	return v
}
func (r *reader) i32() int32 { return int32(r.u32()) }
func (r *reader) i64() int64 {
	var v int64
	if r.err == nil {
		r.err = binary.Read(r.buf, binary.LittleEndian, &v)
	}
	return v
}
func (r *reader) boolean() bool {
	b, err := r.buf.ReadByte()
	if r.err == nil && err != nil {
		r.err = err
	}
	return b == 1
}
func (r *reader) loc() Loc {
	return Loc{Dev: r.i32(), Chunk: r.i64()}
}

// count guards length prefixes against corrupt or hostile payloads.
func (r *reader) count(limit int64) int64 {
	n := r.i64()
	if r.err == nil && (n < 0 || n > limit) {
		r.err = fmt.Errorf("metadata: implausible count %d (limit %d)", n, limit)
	}
	return n
}

const maxCount = int64(1) << 40

func marshalStripeRecord(w *writer, rec *StripeRecord) {
	w.i64(rec.Stripe)
	w.i64(int64(len(rec.Latest)))
	for j := range rec.Latest {
		w.loc(rec.Latest[j])
		w.i64(rec.Prot[j])
		w.loc(rec.Committed[j])
	}
	w.boolean(rec.Virgin)
	w.boolean(rec.Dirty)
}

func unmarshalStripeRecord(r *reader) StripeRecord {
	var rec StripeRecord
	rec.Stripe = r.i64()
	k := r.count(1 << 16)
	if r.err != nil {
		return rec
	}
	rec.Latest = make([]Loc, k)
	rec.Prot = make([]int64, k)
	rec.Committed = make([]Loc, k)
	for j := int64(0); j < k; j++ {
		rec.Latest[j] = r.loc()
		rec.Prot[j] = r.i64()
		rec.Committed[j] = r.loc()
	}
	rec.Virgin = r.boolean()
	rec.Dirty = r.boolean()
	return rec
}

func marshalLogStripeRecord(w *writer, rec *LogStripeRecord) {
	w.i64(rec.ID)
	w.i64(rec.LogPos)
	w.i64(int64(len(rec.Members)))
	for _, m := range rec.Members {
		w.i64(m.LBA)
		w.loc(m.Loc)
	}
}

func unmarshalLogStripeRecord(r *reader) LogStripeRecord {
	var rec LogStripeRecord
	rec.ID = r.i64()
	rec.LogPos = r.i64()
	n := r.count(1 << 16)
	if r.err != nil {
		return rec
	}
	if n > 0 {
		rec.Members = make([]Member, n)
	}
	for i := int64(0); i < n; i++ {
		rec.Members[i].LBA = r.i64()
		rec.Members[i].Loc = r.loc()
	}
	return rec
}

// Marshal encodes the snapshot.
func (s *Snapshot) Marshal() []byte {
	var w writer
	w.i32(s.K)
	w.i32(s.N)
	w.i64(s.Stripes)
	w.i32(s.ChunkSize)
	w.i64(s.NextLogID)
	w.i64(s.LogCursor)
	w.i64(int64(len(s.StripeRecs)))
	for i := range s.StripeRecs {
		marshalStripeRecord(&w, &s.StripeRecs[i])
	}
	w.i64(int64(len(s.LogStripes)))
	for i := range s.LogStripes {
		marshalLogStripeRecord(&w, &s.LogStripes[i])
	}
	return w.buf.Bytes()
}

// UnmarshalSnapshot decodes a snapshot payload.
func UnmarshalSnapshot(p []byte) (*Snapshot, error) {
	r := &reader{buf: bytes.NewReader(p)}
	var s Snapshot
	s.K = r.i32()
	s.N = r.i32()
	s.Stripes = r.i64()
	s.ChunkSize = r.i32()
	s.NextLogID = r.i64()
	s.LogCursor = r.i64()
	nRecs := r.count(maxCount)
	if r.err != nil {
		return nil, r.err
	}
	for i := int64(0); i < nRecs && r.err == nil; i++ {
		s.StripeRecs = append(s.StripeRecs, unmarshalStripeRecord(r))
	}
	nLogs := r.count(maxCount)
	for i := int64(0); i < nLogs && r.err == nil; i++ {
		s.LogStripes = append(s.LogStripes, unmarshalLogStripeRecord(r))
	}
	if r.err != nil {
		return nil, fmt.Errorf("metadata: snapshot decode: %w", r.err)
	}
	return &s, nil
}

// Marshal encodes the delta.
func (d *Delta) Marshal() []byte {
	var w writer
	w.i64(d.NextLogID)
	w.i64(d.LogCursor)
	w.i64(int64(len(d.StripeRecs)))
	for i := range d.StripeRecs {
		marshalStripeRecord(&w, &d.StripeRecs[i])
	}
	w.i64(int64(len(d.LogStripes)))
	for i := range d.LogStripes {
		marshalLogStripeRecord(&w, &d.LogStripes[i])
	}
	return w.buf.Bytes()
}

// UnmarshalDelta decodes an incremental-checkpoint payload.
func UnmarshalDelta(p []byte) (*Delta, error) {
	r := &reader{buf: bytes.NewReader(p)}
	var d Delta
	d.NextLogID = r.i64()
	d.LogCursor = r.i64()
	nRecs := r.count(maxCount)
	if r.err != nil {
		return nil, r.err
	}
	for i := int64(0); i < nRecs && r.err == nil; i++ {
		d.StripeRecs = append(d.StripeRecs, unmarshalStripeRecord(r))
	}
	nLogs := r.count(maxCount)
	for i := int64(0); i < nLogs && r.err == nil; i++ {
		d.LogStripes = append(d.LogStripes, unmarshalLogStripeRecord(r))
	}
	if r.err != nil {
		return nil, fmt.Errorf("metadata: delta decode: %w", r.err)
	}
	return &d, nil
}

// Apply folds a delta into the snapshot in place: dirtied stripe records
// replace their predecessors and the log-stripe set is replaced wholesale.
func (s *Snapshot) Apply(d *Delta) {
	s.NextLogID = d.NextLogID
	s.LogCursor = d.LogCursor
	byStripe := make(map[int64]int, len(s.StripeRecs))
	for i := range s.StripeRecs {
		byStripe[s.StripeRecs[i].Stripe] = i
	}
	for _, rec := range d.StripeRecs {
		if i, ok := byStripe[rec.Stripe]; ok {
			s.StripeRecs[i] = rec
		} else {
			s.StripeRecs = append(s.StripeRecs, rec)
		}
	}
	s.LogStripes = append([]LogStripeRecord(nil), d.LogStripes...)
}
