package metadata

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/eplog/eplog/internal/device"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		K: 4, N: 5, Stripes: 3, ChunkSize: 64,
		NextLogID: 7, LogCursor: 2,
		StripeRecs: []StripeRecord{
			{
				Stripe:    0,
				Latest:    []Loc{{0, 0}, {1, 0}, {2, 0}, {3, 0}},
				Prot:      []int64{-1, -1, 5, -1},
				Committed: []Loc{{0, 0}, {1, 0}, {2, 0}, {3, 0}},
				Virgin:    false,
				Dirty:     true,
			},
			{
				Stripe:    1,
				Latest:    []Loc{{1, 1}, {2, 1}, {3, 1}, {4, 1}},
				Prot:      []int64{-1, -1, -1, -1},
				Committed: []Loc{{1, 1}, {2, 1}, {3, 1}, {4, 1}},
				Virgin:    true,
			},
		},
		LogStripes: []LogStripeRecord{
			{ID: 5, LogPos: 1, Members: []Member{{LBA: 2, Loc: Loc{2, 17}}, {LBA: 9, Loc: Loc{0, 18}}}},
		},
	}
}

func TestSnapshotMarshalRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	got, err := UnmarshalSnapshot(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", s, got)
	}
}

func TestDeltaMarshalRoundTrip(t *testing.T) {
	d := &Delta{
		NextLogID: 9, LogCursor: 4,
		StripeRecs: sampleSnapshot().StripeRecs[:1],
		LogStripes: sampleSnapshot().LogStripes,
	}
	got, err := UnmarshalDelta(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatal("delta round trip mismatch")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSnapshot([]byte{1, 2, 3}); err == nil {
		t.Error("short snapshot accepted")
	}
	if _, err := UnmarshalDelta([]byte{1}); err == nil {
		t.Error("short delta accepted")
	}
	// A plausible header followed by an absurd count.
	s := sampleSnapshot()
	p := s.Marshal()
	for i := 36; i < 44; i++ { // clobber the stripe-record count
		p[i] = 0xFF
	}
	if _, err := UnmarshalSnapshot(p); err == nil {
		t.Error("corrupt count accepted")
	}
}

func TestApplyDelta(t *testing.T) {
	s := sampleSnapshot()
	d := &Delta{
		NextLogID: 20, LogCursor: 6,
		StripeRecs: []StripeRecord{
			{
				Stripe:    1,
				Latest:    []Loc{{1, 40}, {2, 1}, {3, 1}, {4, 1}},
				Prot:      []int64{8, -1, -1, -1},
				Committed: []Loc{{1, 1}, {2, 1}, {3, 1}, {4, 1}},
			},
			{
				Stripe:    2,
				Latest:    []Loc{{2, 2}, {3, 2}, {4, 2}, {0, 2}},
				Prot:      []int64{-1, -1, -1, -1},
				Committed: []Loc{{2, 2}, {3, 2}, {4, 2}, {0, 2}},
			},
		},
		LogStripes: []LogStripeRecord{{ID: 8, LogPos: 5}},
	}
	s.Apply(d)
	if s.NextLogID != 20 || s.LogCursor != 6 {
		t.Error("globals not applied")
	}
	if len(s.StripeRecs) != 3 {
		t.Fatalf("stripe records = %d, want 3", len(s.StripeRecs))
	}
	for _, rec := range s.StripeRecs {
		if rec.Stripe == 1 && rec.Latest[0].Chunk != 40 {
			t.Error("existing record not replaced")
		}
	}
	if len(s.LogStripes) != 1 || s.LogStripes[0].ID != 8 {
		t.Error("log stripe set not replaced")
	}
}

func newVolume(t *testing.T) (*Volume, device.Dev) {
	t.Helper()
	dev := device.NewMem(256, 64)
	v, err := Format(dev, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v, dev
}

func TestFormatValidation(t *testing.T) {
	if _, err := Format(device.NewMem(256, 16), 4); err == nil {
		t.Error("chunk smaller than superblock accepted")
	}
	if _, err := Format(device.NewMem(4, 64), 4); err == nil {
		t.Error("undersized device accepted")
	}
	if _, err := Format(device.NewMem(256, 64), 0); err == nil {
		t.Error("zero full area accepted")
	}
}

func TestOpenUnformatted(t *testing.T) {
	if _, err := Open(device.NewMem(256, 64)); err == nil {
		t.Error("unformatted device opened")
	}
}

func TestFullCheckpointRoundTrip(t *testing.T) {
	v, dev := newVolume(t)
	s := sampleSnapshot()
	if err := v.WriteFull(s); err != nil {
		t.Fatal(err)
	}
	// Load through a re-opened volume (fresh state).
	v2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.HasCheckpoint() {
		t.Fatal("checkpoint not found on reopen")
	}
	got, err := v2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("loaded snapshot differs")
	}
}

func TestFullCheckpointsAlternate(t *testing.T) {
	v, dev := newVolume(t)
	s := sampleSnapshot()
	if err := v.WriteFull(s); err != nil {
		t.Fatal(err)
	}
	s.NextLogID = 100
	if err := v.WriteFull(s); err != nil {
		t.Fatal(err)
	}
	s.NextLogID = 200
	if err := v.WriteFull(s); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.NextLogID != 200 {
		t.Fatalf("loaded NextLogID = %d, want 200 (newest checkpoint)", got.NextLogID)
	}
}

func TestCrashDuringFullCheckpointKeepsPrevious(t *testing.T) {
	v, dev := newVolume(t)
	s := sampleSnapshot()
	if err := v.WriteFull(s); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn second checkpoint: corrupt the area the next
	// write would use by writing a bogus partial frame there directly.
	s.NextLogID = 999
	payload := s.Marshal()
	// Manually write only the header chunk of sub-area B with a wrong CRC.
	head := make([]byte, 64)
	copy(head, []byte{0x41, 0x54, 0x45, 0x4d}) // frameMagic little-endian
	if err := dev.WriteChunk(v.subAreaStart(1), head); err != nil {
		t.Fatal(err)
	}
	_ = payload
	v2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.NextLogID != sampleSnapshot().NextLogID {
		t.Fatalf("loaded NextLogID = %d, want the previous checkpoint's", got.NextLogID)
	}
}

func TestIncrementalCheckpoints(t *testing.T) {
	v, dev := newVolume(t)
	s := sampleSnapshot()
	if err := v.WriteFull(s); err != nil {
		t.Fatal(err)
	}
	d1 := &Delta{NextLogID: 8, LogCursor: 3, LogStripes: []LogStripeRecord{{ID: 7, LogPos: 2}}}
	if err := v.WriteIncremental(d1); err != nil {
		t.Fatal(err)
	}
	d2 := &Delta{NextLogID: 9, LogCursor: 4}
	if err := v.WriteIncremental(d2); err != nil {
		t.Fatal(err)
	}
	if v.IncrementalCount() != 2 {
		t.Errorf("incremental count = %d, want 2", v.IncrementalCount())
	}
	v2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if v2.IncrementalCount() != 2 {
		t.Errorf("reopened incremental count = %d, want 2", v2.IncrementalCount())
	}
	got, err := v2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.NextLogID != 9 || got.LogCursor != 4 {
		t.Fatalf("incrementals not applied: %+v", got)
	}
	if len(got.LogStripes) != 0 {
		t.Error("second delta's empty log-stripe set not applied")
	}
}

func TestIncrementalWithoutFullRejected(t *testing.T) {
	v, _ := newVolume(t)
	if err := v.WriteIncremental(&Delta{}); err == nil {
		t.Error("incremental without a full checkpoint accepted")
	}
}

func TestFullCheckpointResetsIncrementals(t *testing.T) {
	v, dev := newVolume(t)
	s := sampleSnapshot()
	if err := v.WriteFull(s); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteIncremental(&Delta{NextLogID: 50}); err != nil {
		t.Fatal(err)
	}
	s.NextLogID = 70
	if err := v.WriteFull(s); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.NextLogID != 70 {
		t.Fatalf("stale incremental replayed: NextLogID = %d", got.NextLogID)
	}
	if v2.IncrementalCount() != 0 {
		t.Errorf("incremental count = %d, want 0", v2.IncrementalCount())
	}
}

func TestTornIncrementalTailIgnored(t *testing.T) {
	v, dev := newVolume(t)
	if err := v.WriteFull(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteIncremental(&Delta{NextLogID: 11}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the *next* slot with garbage that looks like a frame start
	// but fails CRC.
	garbage := make([]byte, 64)
	copy(garbage, []byte{0x41, 0x54, 0x45, 0x4d})
	if err := dev.WriteChunk(v.incrCursor, garbage); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.NextLogID != 11 {
		t.Fatalf("valid prefix lost: NextLogID = %d", got.NextLogID)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	dev := device.NewMem(8, 64)
	v, err := Format(dev, 1) // 1-chunk full areas
	if err != nil {
		t.Fatal(err)
	}
	big := sampleSnapshot() // marshals to well over 64 bytes
	if err := v.WriteFull(big); err == nil {
		t.Error("oversized checkpoint accepted")
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	prop := func(nextID, cursor int64, nRecRaw, nLogRaw uint8) bool {
		nRec := int(nRecRaw % 5)
		nLog := int(nLogRaw % 5)
		s := &Snapshot{
			K: 4, N: 5, Stripes: int64(nRec), ChunkSize: 64,
			NextLogID: nextID, LogCursor: cursor,
		}
		for i := 0; i < nRec; i++ {
			rec := StripeRecord{
				Stripe:    int64(i),
				Latest:    make([]Loc, 4),
				Prot:      make([]int64, 4),
				Committed: make([]Loc, 4),
				Virgin:    r.Intn(2) == 0,
				Dirty:     r.Intn(2) == 0,
			}
			for j := range rec.Latest {
				rec.Latest[j] = Loc{Dev: int32(r.Intn(5)), Chunk: r.Int63n(1000)}
				rec.Prot[j] = r.Int63n(100) - 1
				rec.Committed[j] = Loc{Dev: int32(r.Intn(5)), Chunk: r.Int63n(1000)}
			}
			s.StripeRecs = append(s.StripeRecs, rec)
		}
		for i := 0; i < nLog; i++ {
			rec := LogStripeRecord{ID: int64(i), LogPos: r.Int63n(100)}
			for j := 0; j < 1+r.Intn(4); j++ {
				rec.Members = append(rec.Members, Member{LBA: r.Int63n(64), Loc: Loc{Dev: int32(r.Intn(5)), Chunk: r.Int63n(1000)}})
			}
			s.LogStripes = append(s.LogStripes, rec)
		}
		got, err := UnmarshalSnapshot(s.Marshal())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(s, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: r}); err != nil {
		t.Error(err)
	}
}

// TestRandomCorruptionNeverPanics flips random bytes across the volume and
// checks that Open/Load either fail cleanly or return a structurally valid
// snapshot — never panic, never hand back garbage counts.
func TestRandomCorruptionNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		dev := device.NewMem(256, 64)
		v, err := Format(dev, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.WriteFull(sampleSnapshot()); err != nil {
			t.Fatal(err)
		}
		if err := v.WriteIncremental(&Delta{NextLogID: 9}); err != nil {
			t.Fatal(err)
		}
		// Corrupt 1-16 random bytes anywhere on the device.
		buf := make([]byte, 64)
		for i := 0; i < 1+r.Intn(16); i++ {
			c := int64(r.Intn(256))
			if err := dev.ReadChunk(c, buf); err != nil {
				t.Fatal(err)
			}
			buf[r.Intn(64)] ^= byte(1 + r.Intn(255))
			if err := dev.WriteChunk(c, buf); err != nil {
				t.Fatal(err)
			}
		}
		v2, err := Open(dev)
		if err != nil {
			continue // clean failure is acceptable
		}
		snap, err := v2.Load()
		if err != nil {
			continue
		}
		if snap.K < 0 || snap.Stripes < 0 || len(snap.StripeRecs) > 1<<20 {
			t.Fatalf("trial %d: implausible snapshot decoded: k=%d stripes=%d recs=%d",
				trial, snap.K, snap.Stripes, len(snap.StripeRecs))
		}
	}
}
