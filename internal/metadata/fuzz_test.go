package metadata

import "testing"

// FuzzUnmarshalSnapshot checks the snapshot decoder never panics or
// over-allocates on arbitrary payloads, and accepts its own encodings.
func FuzzUnmarshalSnapshot(f *testing.F) {
	f.Add(sampleSnapshot().Marshal())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSnapshot(data)
		if err != nil {
			return
		}
		// Decoded snapshots must re-encode and decode to the same shape.
		s2, err := UnmarshalSnapshot(s.Marshal())
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot: %v", err)
		}
		if len(s2.StripeRecs) != len(s.StripeRecs) || len(s2.LogStripes) != len(s.LogStripes) {
			t.Fatal("re-encode changed record counts")
		}
	})
}

// FuzzUnmarshalDelta is the same property for incremental payloads.
func FuzzUnmarshalDelta(f *testing.F) {
	d := &Delta{NextLogID: 3, LogCursor: 1, LogStripes: sampleSnapshot().LogStripes}
	f.Add(d.Marshal())
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := UnmarshalDelta(data)
		if err != nil {
			return
		}
		if _, err := UnmarshalDelta(d.Marshal()); err != nil {
			t.Fatalf("re-decode of re-encoded delta: %v", err)
		}
	})
}
