// Package raid implements conventional software RAID over an SSD array —
// the paper's MD baseline (Linux mdadm). Data and parity live together on
// the main array with rotated placement; partial-stripe writes update
// parity immediately using read-modify-write for single-parity arrays
// (RAID-5) and reconstruct-write for multi-parity arrays (RAID-6 in the
// paper's kernel-3.13 md, which lacked RAID-6 RMW). The array supports
// degraded reads, degraded writes, and full rebuild onto a replacement
// device.
package raid

import (
	"errors"
	"fmt"
	"sync"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/erasure"
	"github.com/eplog/eplog/internal/gf"
	"github.com/eplog/eplog/internal/store"
)

// ErrTooManyFailures is returned when a stripe cannot be decoded.
var ErrTooManyFailures = errors.New("raid: too many failed devices")

// Stats counts the parity-update I/O the scheme generated beyond the user
// data itself.
type Stats struct {
	// PreReadChunks counts chunks read on the write path (old data, old
	// parity, or untouched data for reconstruct-writes).
	PreReadChunks int64
	// ParityWriteChunks counts parity chunks written.
	ParityWriteChunks int64
	// FullStripeWrites counts stripes written without any pre-read.
	FullStripeWrites int64
	// RMWWrites and ReconstructWrites count partial-stripe strategies.
	RMWWrites         int64
	ReconstructWrites int64
}

// Array is a conventional RAID array. It implements store.Store. Exported
// methods serialize on an internal mutex, so an Array is safe for
// concurrent use — keeping the baseline's external contract identical to
// EPLog's for apples-to-apples comparisons.
type Array struct {
	mu    sync.Mutex
	geo   store.Geometry
	code  *erasure.Code
	devs  []device.Dev
	csize int
	stats Stats
}

var _ store.Store = (*Array)(nil)

// New builds an array over devs with k data chunks per stripe; the number
// of parity chunks is len(devs)-k. Every device must have identical
// geometry and at least stripes chunks.
func New(devs []device.Dev, k int, stripes int64) (*Array, error) {
	if len(devs) < 2 {
		return nil, fmt.Errorf("raid: need at least 2 devices, got %d", len(devs))
	}
	geo, err := store.NewGeometry(len(devs), k, stripes)
	if err != nil {
		return nil, err
	}
	csize := devs[0].ChunkSize()
	for i, d := range devs {
		if d.ChunkSize() != csize {
			return nil, fmt.Errorf("raid: device %d chunk size %d != %d", i, d.ChunkSize(), csize)
		}
		if d.Chunks() < stripes {
			return nil, fmt.Errorf("raid: device %d has %d chunks, need %d", i, d.Chunks(), stripes)
		}
	}
	code, err := erasure.New(k, geo.M(), erasure.Cauchy)
	if err != nil {
		return nil, err
	}
	return &Array{geo: geo, code: code, devs: devs, csize: csize}, nil
}

// Chunks implements store.Store.
func (a *Array) Chunks() int64 { return a.geo.Chunks() }

// ChunkSize implements store.Store.
func (a *Array) ChunkSize() int { return a.csize }

// Commit implements store.Store; conventional RAID has nothing to flush.
func (a *Array) Commit() error { return nil }

// Stats returns the parity-update counters.
func (a *Array) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Geometry exposes the layout for tests and tools.
func (a *Array) Geometry() store.Geometry { return a.geo }

// WriteChunks implements store.Store. The request is split per stripe; all
// pre-reads across the affected stripes proceed in parallel (phase 1),
// then all data and parity writes (phase 2), matching a request-parallel
// software-RAID implementation with a barrier between the phases.
func (a *Array) WriteChunks(start float64, lba int64, data []byte) (float64, error) {
	nChunks := int64(len(data) / a.csize)
	if int(nChunks)*a.csize != len(data) || nChunks == 0 {
		return start, fmt.Errorf("raid: data length %d not a positive chunk multiple", len(data))
	}
	if lba < 0 || lba+nChunks > a.geo.Chunks() {
		return start, fmt.Errorf("%w: [%d,%d) of %d", store.ErrWriteTooLarge, lba, lba+nChunks, a.geo.Chunks())
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	type stripeUpdate struct {
		stripe int64
		slots  []int
		chunks [][]byte
	}
	var ups []stripeUpdate
	for off := int64(0); off < nChunks; {
		s, _ := a.geo.Stripe(lba + off)
		u := stripeUpdate{stripe: s}
		for ; off < nChunks; off++ {
			s2, j2 := a.geo.Stripe(lba + off)
			if s2 != s {
				break
			}
			u.slots = append(u.slots, j2)
			u.chunks = append(u.chunks, data[off*int64(a.csize):(off+1)*int64(a.csize)])
		}
		ups = append(ups, u)
	}

	pre := device.NewSpan(start)
	parities := make([][][]byte, 0, len(ups))
	for _, u := range ups {
		parity, err := a.planStripe(pre, u.stripe, u.slots, u.chunks)
		if err != nil {
			return start, err
		}
		parities = append(parities, parity)
	}
	if pre.Err() != nil {
		return start, pre.Err()
	}

	wr := pre.Next()
	for i, u := range ups {
		if err := a.writeStripe(wr, u.stripe, u.slots, u.chunks, parities[i]); err != nil {
			return start, err
		}
	}
	if wr.Err() != nil {
		return start, wr.Err()
	}
	// The parity buffers came from the arena (planStripe); they are dead
	// once written out.
	for _, p := range parities {
		bufpool.Default.PutSlices(p)
	}
	return wr.End(), nil
}

// planStripe performs the pre-read phase for one stripe and returns the
// new parity chunks. The parity buffers come from the arena; the caller
// returns them once the write phase is done. All pre-read scratch is
// arena-backed and returned before planStripe exits.
func (a *Array) planStripe(pre *device.Span, stripe int64, slots []int, chunks [][]byte) ([][]byte, error) {
	k, m := a.geo.K, a.geo.M()
	c := len(slots)
	home := a.geo.HomeChunk(stripe)

	// Full-stripe write: parity from the new data alone.
	if c == k {
		shards := make([][]byte, k+m)
		for i, ch := range chunks {
			shards[slots[i]] = ch
		}
		parity := bufpool.Default.GetSlices(make([][]byte, m), a.csize)
		copy(shards[k:], parity)
		if err := a.code.Encode(shards); err != nil {
			bufpool.Default.PutSlices(parity)
			return nil, err
		}
		a.stats.FullStripeWrites++
		return parity, nil
	}

	// Read-modify-write for single-parity arrays when few chunks change.
	if m == 1 && c <= k/2 {
		parity := make([][]byte, 1)
		parity[0] = bufpool.Default.Get(a.csize)
		rmwOK := false
		if err := pre.Read(a.devs[a.geo.ParityDev(stripe, 0)], home, parity[0]); err == nil {
			rmwOK = true
			old := bufpool.Default.Get(a.csize)
			delta := bufpool.Default.Get(a.csize)
			var uerr error
			for i, j := range slots {
				if err := pre.Read(a.devs[a.geo.DataDev(stripe, j)], home, old); err != nil {
					rmwOK = false
					break
				}
				copy(delta, old)
				gf.XORSlice(chunks[i], delta)
				if uerr = a.code.UpdateParity(j, delta, parity); uerr != nil {
					break
				}
				a.stats.PreReadChunks++
			}
			bufpool.Default.Put(old)
			bufpool.Default.Put(delta)
			if uerr != nil {
				bufpool.Default.Put(parity[0])
				return nil, uerr
			}
		}
		if rmwOK {
			a.stats.PreReadChunks++ // the parity pre-read
			a.stats.RMWWrites++
			return parity, nil
		}
		bufpool.Default.Put(parity[0])
		if err := pre.Err(); err != nil && !errors.Is(err, device.ErrFailed) {
			return nil, err
		}
		// A device needed by RMW has failed; fall through to the
		// reconstruct path, which can tolerate it.
		pre.ClearErr()
	}

	// Reconstruct-write: read the untouched data chunks and re-encode.
	// Pre-read and reconstructed buffers are arena-owned; the caller's
	// chunks (tracked in updated) must never be returned to the arena.
	updated := make(map[int][]byte, c)
	for i, j := range slots {
		updated[j] = chunks[i]
	}
	shards := make([][]byte, k+m)
	readShard := func(i, dev int) (bool, error) {
		buf := bufpool.Default.Get(a.csize)
		if err := pre.Read(a.devs[dev], home, buf); err != nil {
			bufpool.Default.Put(buf)
			if !errors.Is(err, device.ErrFailed) {
				return false, err
			}
			pre.ClearErr()
			return false, nil
		}
		shards[i] = buf
		a.stats.PreReadChunks++
		return true, nil
	}
	putScratch := func() {
		for j := 0; j < k+m; j++ {
			if _, ok := updated[j]; ok && j < k {
				continue // caller-owned (or nil)
			}
			if shards[j] != nil {
				bufpool.Default.Put(shards[j])
				shards[j] = nil
			}
		}
	}
	failed := false
	for j := 0; j < k; j++ {
		if _, ok := updated[j]; ok {
			continue
		}
		ok, err := readShard(j, a.geo.DataDev(stripe, j))
		if err != nil {
			putScratch()
			return nil, err
		}
		if !ok {
			failed = true
		}
	}
	if failed {
		// Degraded: the pre-update value of a missing untouched slot
		// must be decoded against the stripe's pre-update state, so
		// read the old contents of the updated slots and the parity
		// too, decode, and only then overlay the new data.
		for j := range updated {
			if _, err := readShard(j, a.geo.DataDev(stripe, j)); err != nil {
				putScratch()
				return nil, err
			}
		}
		for i := 0; i < m; i++ {
			if _, err := readShard(k+i, a.geo.ParityDev(stripe, i)); err != nil {
				putScratch()
				return nil, err
			}
		}
		if err := a.code.ReconstructData(shards); err != nil {
			putScratch()
			return nil, fmt.Errorf("%w: %v", ErrTooManyFailures, err)
		}
		// Overlay the new data, releasing the old contents read (or
		// reconstructed) for the updated slots.
		for j, ch := range updated {
			if shards[j] != nil {
				bufpool.Default.Put(shards[j])
			}
			shards[j] = ch
		}
		// Old parity read for the decode is dead now.
		bufpool.Default.PutSlices(shards[k:])
	} else {
		for j, ch := range updated {
			shards[j] = ch
		}
	}
	parity := bufpool.Default.GetSlices(make([][]byte, m), a.csize)
	copy(shards[k:], parity)
	if err := a.code.Encode(shards); err != nil {
		bufpool.Default.PutSlices(parity)
		clear(shards[k:])
		putScratch()
		return nil, err
	}
	a.stats.ReconstructWrites++
	clear(shards[k:]) // keep putScratch away from the returned parity
	putScratch()
	return parity, nil
}

// writeStripe issues the data and parity writes for one stripe within the
// write span, skipping failed devices (their chunks are restored by
// Rebuild).
func (a *Array) writeStripe(wr *device.Span, stripe int64, slots []int, chunks [][]byte, parity [][]byte) error {
	home := a.geo.HomeChunk(stripe)
	for i, j := range slots {
		if err := wr.Write(a.devs[a.geo.DataDev(stripe, j)], home, chunks[i]); err != nil {
			if !errors.Is(err, device.ErrFailed) {
				return err
			}
			wr.ClearErr()
		}
	}
	for i, p := range parity {
		if err := wr.Write(a.devs[a.geo.ParityDev(stripe, i)], home, p); err != nil {
			if !errors.Is(err, device.ErrFailed) {
				return err
			}
			wr.ClearErr()
		}
		a.stats.ParityWriteChunks++
	}
	return nil
}

// ReadChunks implements store.Store, reconstructing chunks on failed
// devices from the rest of their stripes.
func (a *Array) ReadChunks(start float64, lba int64, p []byte) (float64, error) {
	nChunks := int64(len(p) / a.csize)
	if int(nChunks)*a.csize != len(p) || nChunks == 0 {
		return start, fmt.Errorf("raid: buffer length %d not a positive chunk multiple", len(p))
	}
	if lba < 0 || lba+nChunks > a.geo.Chunks() {
		return start, fmt.Errorf("%w: [%d,%d) of %d", store.ErrWriteTooLarge, lba, lba+nChunks, a.geo.Chunks())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	span := device.NewSpan(start)
	for off := int64(0); off < nChunks; off++ {
		s, j := a.geo.Stripe(lba + off)
		buf := p[off*int64(a.csize) : (off+1)*int64(a.csize)]
		err := span.Read(a.devs[a.geo.DataDev(s, j)], a.geo.HomeChunk(s), buf)
		if err == nil {
			continue
		}
		if !errors.Is(err, device.ErrFailed) {
			return start, err
		}
		span.ClearErr()
		if err := a.degradedRead(span, s, j, buf); err != nil {
			return start, err
		}
	}
	if span.Err() != nil {
		return start, span.Err()
	}
	return span.End(), nil
}

// degradedRead decodes slot j of a stripe from its surviving chunks.
func (a *Array) degradedRead(span *device.Span, stripe int64, slot int, out []byte) error {
	k, m := a.geo.K, a.geo.M()
	home := a.geo.HomeChunk(stripe)
	shards := make([][]byte, k+m)
	defer bufpool.Default.PutSlices(shards)
	readShard := func(i, dev int) error {
		buf := bufpool.Default.Get(a.csize)
		if err := span.Read(a.devs[dev], home, buf); err != nil {
			bufpool.Default.Put(buf)
			if !errors.Is(err, device.ErrFailed) {
				return err
			}
			span.ClearErr()
			return nil
		}
		shards[i] = buf
		return nil
	}
	for j := 0; j < k; j++ {
		if j == slot {
			continue
		}
		if err := readShard(j, a.geo.DataDev(stripe, j)); err != nil {
			return err
		}
	}
	for i := 0; i < m; i++ {
		if err := readShard(k+i, a.geo.ParityDev(stripe, i)); err != nil {
			return err
		}
	}
	if err := a.code.ReconstructData(shards); err != nil {
		return fmt.Errorf("%w: %v", ErrTooManyFailures, err)
	}
	copy(out, shards[slot])
	return nil
}

// Rebuild reconstructs the full contents of device devIdx onto replacement,
// then swaps it into the array. The replacement must match the array
// geometry.
func (a *Array) Rebuild(devIdx int, replacement device.Dev) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if devIdx < 0 || devIdx >= a.geo.N {
		return fmt.Errorf("raid: device index %d out of range", devIdx)
	}
	if replacement.ChunkSize() != a.csize || replacement.Chunks() < a.geo.Stripes {
		return fmt.Errorf("raid: replacement geometry mismatch")
	}
	k, m := a.geo.K, a.geo.M()
	for s := int64(0); s < a.geo.Stripes; s++ {
		home := a.geo.HomeChunk(s)
		// Which slot of this stripe lives on devIdx?
		target := -1
		isParity := false
		for j := 0; j < k; j++ {
			if a.geo.DataDev(s, j) == devIdx {
				target, isParity = j, false
				break
			}
		}
		if target < 0 {
			for i := 0; i < m; i++ {
				if a.geo.ParityDev(s, i) == devIdx {
					target, isParity = i, true
					break
				}
			}
		}
		if target < 0 {
			continue
		}
		shards := make([][]byte, k+m)
		readShard := func(i, d int) error {
			buf := bufpool.Default.Get(a.csize)
			if err := a.devs[d].ReadChunk(home, buf); err != nil {
				bufpool.Default.Put(buf)
				if !errors.Is(err, device.ErrFailed) {
					return err
				}
				return nil
			}
			shards[i] = buf
			return nil
		}
		for j := 0; j < k; j++ {
			if d := a.geo.DataDev(s, j); d != devIdx {
				if err := readShard(j, d); err != nil {
					bufpool.Default.PutSlices(shards)
					return err
				}
			}
		}
		for i := 0; i < m; i++ {
			if d := a.geo.ParityDev(s, i); d != devIdx {
				if err := readShard(k+i, d); err != nil {
					bufpool.Default.PutSlices(shards)
					return err
				}
			}
		}
		if err := a.code.Reconstruct(shards); err != nil {
			bufpool.Default.PutSlices(shards)
			return fmt.Errorf("%w: stripe %d: %v", ErrTooManyFailures, s, err)
		}
		out := shards[target]
		if isParity {
			out = shards[k+target]
		}
		err := replacement.WriteChunk(home, out)
		bufpool.Default.PutSlices(shards)
		if err != nil {
			return err
		}
	}
	a.devs[devIdx] = replacement
	return nil
}

// Verify scrubs the array: every stripe's parity is checked against its
// data. It returns the stripes whose redundancy does not match.
func (a *Array) Verify() ([]int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	k, m := a.geo.K, a.geo.M()
	var bad []int64
	shards := bufpool.Default.GetSlices(make([][]byte, k+m), a.csize)
	defer bufpool.Default.PutSlices(shards)
	for s := int64(0); s < a.geo.Stripes; s++ {
		home := a.geo.HomeChunk(s)
		for j := 0; j < k; j++ {
			if err := a.devs[a.geo.DataDev(s, j)].ReadChunk(home, shards[j]); err != nil {
				return nil, fmt.Errorf("raid: verify stripe %d slot %d: %w", s, j, err)
			}
		}
		for i := 0; i < m; i++ {
			if err := a.devs[a.geo.ParityDev(s, i)].ReadChunk(home, shards[k+i]); err != nil {
				return nil, fmt.Errorf("raid: verify stripe %d parity %d: %w", s, i, err)
			}
		}
		ok, err := a.code.Verify(shards)
		if err != nil {
			return nil, err
		}
		if !ok {
			bad = append(bad, s)
		}
	}
	return bad, nil
}
