package raid

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/store"
)

const (
	testChunk   = 64
	testStripes = 24
)

// newTestArray builds a k-of-n array over fault-injectable memory devices.
func newTestArray(t *testing.T, n, k int) (*Array, []*device.Faulty) {
	t.Helper()
	devs := make([]device.Dev, n)
	faulty := make([]*device.Faulty, n)
	for i := range devs {
		f := device.NewFaulty(device.NewMem(testStripes, testChunk))
		faulty[i] = f
		devs[i] = f
	}
	a, err := New(devs, k, testStripes)
	if err != nil {
		t.Fatal(err)
	}
	return a, faulty
}

func chunkData(seed, nChunks int) []byte {
	r := rand.New(rand.NewSource(int64(seed)))
	p := make([]byte, nChunks*testChunk)
	r.Read(p)
	return p
}

func TestNewValidation(t *testing.T) {
	devs := []device.Dev{device.NewMem(8, 64), device.NewMem(8, 64)}
	if _, err := New(devs[:1], 1, 4); err == nil {
		t.Error("single device accepted")
	}
	if _, err := New(devs, 2, 4); err == nil {
		t.Error("k == n accepted")
	}
	if _, err := New(devs, 1, 100); err == nil {
		t.Error("too many stripes accepted")
	}
	mixed := []device.Dev{device.NewMem(8, 64), device.NewMem(8, 32)}
	if _, err := New(mixed, 1, 4); err == nil {
		t.Error("mixed chunk sizes accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, nk := range [][2]int{{5, 4}, {6, 4}, {8, 6}} {
		a, _ := newTestArray(t, nk[0], nk[1])
		data := chunkData(1, int(a.Chunks()))
		if _, err := a.WriteChunks(0, 0, data); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := a.ReadChunks(0, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d k=%d: read back wrong data", nk[0], nk[1])
		}
	}
}

func TestWriteValidation(t *testing.T) {
	a, _ := newTestArray(t, 5, 4)
	if _, err := a.WriteChunks(0, 0, make([]byte, testChunk-1)); err == nil {
		t.Error("non-chunk-multiple write accepted")
	}
	if _, err := a.WriteChunks(0, 0, nil); err == nil {
		t.Error("empty write accepted")
	}
	if _, err := a.WriteChunks(0, a.Chunks(), make([]byte, testChunk)); !errors.Is(err, store.ErrWriteTooLarge) {
		t.Errorf("overflow write error = %v", err)
	}
	if _, err := a.ReadChunks(0, -1, make([]byte, testChunk)); err == nil {
		t.Error("negative read accepted")
	}
	if _, err := a.ReadChunks(0, 0, make([]byte, 10)); err == nil {
		t.Error("bad read buffer accepted")
	}
}

func TestPartialWritesUpdateParity(t *testing.T) {
	// After any mix of partial writes, a degraded read of every chunk
	// must return the latest contents — i.e. parity is always coherent.
	for _, nk := range [][2]int{{5, 4}, {6, 4}} {
		n, k := nk[0], nk[1]
		a, faulty := newTestArray(t, n, k)
		r := rand.New(rand.NewSource(2))
		shadow := make([]byte, a.Chunks()*testChunk)

		// Random single- and multi-chunk updates.
		for i := 0; i < 200; i++ {
			nC := 1 + r.Intn(3)
			lba := int64(r.Intn(int(a.Chunks()) - nC))
			data := chunkData(100+i, nC)
			if _, err := a.WriteChunks(0, lba, data); err != nil {
				t.Fatal(err)
			}
			copy(shadow[lba*testChunk:], data)
		}

		// Fail each device in turn and verify every chunk via
		// degraded reads.
		for d := 0; d < n; d++ {
			faulty[d].Fail()
			got := make([]byte, len(shadow))
			if _, err := a.ReadChunks(0, 0, got); err != nil {
				t.Fatalf("n=%d k=%d failed dev %d: %v", n, k, d, err)
			}
			if !bytes.Equal(got, shadow) {
				t.Fatalf("n=%d k=%d failed dev %d: degraded read mismatch", n, k, d)
			}
			faulty[d].Repair()
		}
	}
}

func TestRAID6SurvivesTwoFailures(t *testing.T) {
	a, faulty := newTestArray(t, 6, 4)
	data := chunkData(3, int(a.Chunks()))
	if _, err := a.WriteChunks(0, 0, data); err != nil {
		t.Fatal(err)
	}
	// Some partial updates on top.
	upd := chunkData(4, 2)
	if _, err := a.WriteChunks(0, 5, upd); err != nil {
		t.Fatal(err)
	}
	copy(data[5*testChunk:], upd)

	faulty[1].Fail()
	faulty[4].Fail()
	got := make([]byte, len(data))
	if _, err := a.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read with two failures mismatched")
	}

	// Three failures exceed fault tolerance; expect an error for chunks
	// on failed devices.
	faulty[2].Fail()
	if _, err := a.ReadChunks(0, 0, got); err == nil {
		t.Fatal("read with three failures on a RAID-6 array succeeded")
	}
}

func TestDegradedWriteThenRecovery(t *testing.T) {
	a, faulty := newTestArray(t, 5, 4)
	data := chunkData(5, int(a.Chunks()))
	if _, err := a.WriteChunks(0, 0, data); err != nil {
		t.Fatal(err)
	}
	// Fail a device, write over chunks (some on the failed device).
	faulty[2].Fail()
	upd := chunkData(6, 8)
	if _, err := a.WriteChunks(0, 0, upd); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	copy(data[:8*testChunk], upd)

	// All chunks readable in degraded mode.
	got := make([]byte, len(data))
	if _, err := a.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read after degraded write mismatched")
	}

	// Rebuild onto a replacement and verify in normal mode.
	repl := device.NewMem(testStripes, testChunk)
	if err := a.Rebuild(2, repl); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read after rebuild mismatched")
	}
}

func TestRebuildValidation(t *testing.T) {
	a, _ := newTestArray(t, 5, 4)
	if err := a.Rebuild(-1, device.NewMem(testStripes, testChunk)); err == nil {
		t.Error("negative device index accepted")
	}
	if err := a.Rebuild(0, device.NewMem(2, testChunk)); err == nil {
		t.Error("undersized replacement accepted")
	}
}

func TestRMWUsedForRAID5SmallWrites(t *testing.T) {
	a, _ := newTestArray(t, 5, 4)
	// Precondition the array.
	if _, err := a.WriteChunks(0, 0, chunkData(7, int(a.Chunks()))); err != nil {
		t.Fatal(err)
	}
	before := a.Stats()
	// Single-chunk update: c=1 <= k/2=2 -> RMW (read old data + parity).
	if _, err := a.WriteChunks(0, 0, chunkData(8, 1)); err != nil {
		t.Fatal(err)
	}
	after := a.Stats()
	if after.RMWWrites != before.RMWWrites+1 {
		t.Errorf("RMW writes %d -> %d, want +1", before.RMWWrites, after.RMWWrites)
	}
	if got := after.PreReadChunks - before.PreReadChunks; got != 2 {
		t.Errorf("pre-reads for 1-chunk RAID-5 RMW = %d, want 2", got)
	}
}

func TestReconstructWriteUsedForRAID6(t *testing.T) {
	a, _ := newTestArray(t, 6, 4) // m=2
	if _, err := a.WriteChunks(0, 0, chunkData(9, int(a.Chunks()))); err != nil {
		t.Fatal(err)
	}
	before := a.Stats()
	if _, err := a.WriteChunks(0, 0, chunkData(10, 1)); err != nil {
		t.Fatal(err)
	}
	after := a.Stats()
	if after.ReconstructWrites != before.ReconstructWrites+1 {
		t.Error("RAID-6 small write did not use reconstruct-write")
	}
	// Reconstruct-write reads the k-1 untouched chunks.
	if got := after.PreReadChunks - before.PreReadChunks; got != 3 {
		t.Errorf("pre-reads = %d, want 3", got)
	}
	if after.RMWWrites != before.RMWWrites {
		t.Error("RAID-6 used RMW, which kernel-3.13 md does not support")
	}
}

func TestFullStripeWriteSkipsPreReads(t *testing.T) {
	a, _ := newTestArray(t, 5, 4)
	before := a.Stats()
	// Stripe-aligned k-chunk write.
	if _, err := a.WriteChunks(0, 0, chunkData(11, 4)); err != nil {
		t.Fatal(err)
	}
	after := a.Stats()
	if after.FullStripeWrites != before.FullStripeWrites+1 {
		t.Error("aligned write did not take the full-stripe path")
	}
	if after.PreReadChunks != before.PreReadChunks {
		t.Error("full-stripe write performed pre-reads")
	}
	if got := after.ParityWriteChunks - before.ParityWriteChunks; got != 1 {
		t.Errorf("parity writes = %d, want 1", got)
	}
}

func TestCommitIsNoOp(t *testing.T) {
	a, _ := newTestArray(t, 5, 4)
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossStripeWrite(t *testing.T) {
	a, _ := newTestArray(t, 5, 4)
	if _, err := a.WriteChunks(0, 0, chunkData(12, int(a.Chunks()))); err != nil {
		t.Fatal(err)
	}
	// Write spanning stripes 0 and 1 (slots 2,3 of stripe 0 and 0,1 of 1).
	data := chunkData(13, 4)
	if _, err := a.WriteChunks(0, 2, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*testChunk)
	if _, err := a.ReadChunks(0, 2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-stripe write mismatched")
	}
}

func TestWriteTimingHasTwoPhases(t *testing.T) {
	// With latency-modeled devices, a partial-stripe write must take
	// strictly longer than a full-stripe write (pre-read phase), and a
	// full-stripe write strictly longer than zero.
	n := 5
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.WithLatency(device.NewMem(testStripes, testChunk), 0.001, 0.001)
	}
	a, err := New(devs, 4, testStripes)
	if err != nil {
		t.Fatal(err)
	}
	endFull, err := a.WriteChunks(0, 0, chunkData(14, 4))
	if err != nil {
		t.Fatal(err)
	}
	if endFull != 0.001 {
		t.Errorf("full-stripe write latency = %v, want 0.001 (one parallel phase)", endFull)
	}
	start := 10.0
	endPartial, err := a.WriteChunks(start, 0, chunkData(15, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := endPartial - start; got < 0.002-1e-9 || got > 0.002+1e-9 {
		t.Errorf("partial write latency = %v, want 0.002 (pre-read + write phases)", got)
	}
}

func TestVerifyCleanAndCorrupted(t *testing.T) {
	a, _ := newTestArray(t, 5, 4)
	if _, err := a.WriteChunks(0, 0, chunkData(20, int(a.Chunks()))); err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteChunks(0, 3, chunkData(21, 2)); err != nil {
		t.Fatal(err)
	}
	bad, err := a.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean array failed scrub: %v", bad)
	}
	// Silent corruption behind the array's back.
	if err := a.devs[a.Geometry().DataDev(2, 1)].WriteChunk(2, chunkData(22, 1)); err != nil {
		t.Fatal(err)
	}
	bad, err = a.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != 2 {
		t.Fatalf("scrub found %v, want [2]", bad)
	}
}
