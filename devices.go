package eplog

import (
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/hdd"
	"github.com/eplog/eplog/internal/ssd"
)

// BlockDevice is the chunk-addressed device abstraction EPLog runs on.
// Implementations must provide fixed-size chunk reads and writes; the *At
// variants carry virtual-time accounting for simulation-driven setups and
// may simply return start unchanged on real hardware.
type BlockDevice interface {
	// ReadChunk reads chunk idx into p (len(p) must equal ChunkSize()).
	ReadChunk(idx int64, p []byte) error
	// WriteChunk writes p to chunk idx.
	WriteChunk(idx int64, p []byte) error
	// ReadChunkAt is ReadChunk with virtual-time accounting.
	ReadChunkAt(start float64, idx int64, p []byte) (float64, error)
	// WriteChunkAt is WriteChunk with virtual-time accounting.
	WriteChunkAt(start float64, idx int64, p []byte) (float64, error)
	// Trim marks n chunks starting at idx as unused.
	Trim(idx, n int64) error
	// Chunks is the addressable capacity in chunks.
	Chunks() int64
	// ChunkSize is the chunk size in bytes.
	ChunkSize() int
}

// The internal device interface has the identical method set, so any
// BlockDevice converts directly.
var _ BlockDevice = (device.Dev)(nil)

// toInternal converts a public device slice for the internal packages.
func toInternal(devs []BlockDevice) []device.Dev {
	out := make([]device.Dev, len(devs))
	for i, d := range devs {
		out[i] = d
	}
	return out
}

// NewMemDevice returns a RAM-backed device, useful for tests, experiments
// and examples.
func NewMemDevice(chunks int64, chunkSize int) BlockDevice {
	return device.NewMem(chunks, chunkSize)
}

// FileDevice is a file-backed device that persists across process
// restarts.
type FileDevice struct {
	*device.File
}

// OpenFileDevice opens (creating and sizing if needed) a file-backed
// device. Call Close when done.
func OpenFileDevice(path string, chunks int64, chunkSize int) (*FileDevice, error) {
	f, err := device.OpenFile(path, chunks, chunkSize)
	if err != nil {
		return nil, err
	}
	return &FileDevice{File: f}, nil
}

// NewSimulatedSSD returns a flash-translation-layer SSD simulator with the
// given raw capacity: out-of-place page writes, greedy garbage collection,
// wear accounting, and a latency model. Use SSDStats to read its counters.
func NewSimulatedSSD(rawBytes int64) (BlockDevice, error) {
	return ssd.New(ssd.DefaultParams(rawBytes))
}

// SSDStats reports the endurance counters of a device created by
// NewSimulatedSSD: host writes, GC operations, pages moved, erases, and
// write amplification. ok is false for other device types.
func SSDStats(d BlockDevice) (hostWrites, gcOps, pagesMoved, erases int64, writeAmp float64, ok bool) {
	s, isSSD := d.(*ssd.Device)
	if !isSSD {
		return 0, 0, 0, 0, 0, false
	}
	st := s.Stats()
	return st.HostWrites, st.GCInvocations, st.PagesMoved, st.Erases, st.WriteAmplification(), true
}

// NewSimulatedHDD returns a mechanical-disk latency model suited for log
// devices: sequential appends stream at media speed, discontinuous
// accesses pay positioning costs.
func NewSimulatedHDD(chunks int64, chunkSize int) (BlockDevice, error) {
	return hdd.New(hdd.DefaultParams(chunks, chunkSize))
}

// HDDStats reports the activity counters of a device created by
// NewSimulatedHDD: operation counts and how many were serviced from the
// sequential stream versus after repositioning. ok is false for other
// device types.
func HDDStats(d BlockDevice) (reads, writes, streamed, positioned int64, ok bool) {
	h, isHDD := d.(*hdd.Device)
	if !isHDD {
		return 0, 0, 0, 0, false
	}
	st := h.Stats()
	return st.Reads, st.Writes, st.StreamedOps, st.PositionedOps, true
}

// NewFaultyDevice wraps a device with fail-stop fault injection for
// recovery testing and demos.
func NewFaultyDevice(inner BlockDevice) *FaultyDevice {
	return &FaultyDevice{Faulty: device.NewFaulty(inner)}
}

// FaultyDevice is a fault-injection wrapper; Fail makes every operation
// return an error until Repair.
type FaultyDevice struct {
	*device.Faulty
}
