package eplog_test

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/eplog/eplog"
)

const (
	chunk   = 4096
	stripes = 64
)

func newArray(t *testing.T, cfg eplog.Config) (*eplog.Array, []*eplog.FaultyDevice, []*eplog.FaultyDevice) {
	t.Helper()
	if cfg.K == 0 {
		cfg.K = 6
	}
	if cfg.Stripes == 0 {
		cfg.Stripes = stripes
	}
	n := cfg.K + 2
	devs := make([]eplog.BlockDevice, n)
	fmain := make([]*eplog.FaultyDevice, n)
	for i := range devs {
		f := eplog.NewFaultyDevice(eplog.NewMemDevice(cfg.Stripes*3, chunk))
		fmain[i] = f
		devs[i] = f
	}
	logs := make([]eplog.BlockDevice, 2)
	flogs := make([]*eplog.FaultyDevice, 2)
	for i := range logs {
		f := eplog.NewFaultyDevice(eplog.NewMemDevice(8192, chunk))
		flogs[i] = f
		logs[i] = f
	}
	a, err := eplog.New(devs, logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, fmain, flogs
}

func TestPublicRoundTrip(t *testing.T) {
	a, _, _ := newArray(t, eplog.Config{})
	data := make([]byte, a.Chunks()*int64(chunk))
	rand.New(rand.NewSource(1)).Read(data)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := a.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if a.ChunkSize() != chunk {
		t.Errorf("ChunkSize = %d", a.ChunkSize())
	}
}

func TestPublicDegradedAndRebuild(t *testing.T) {
	a, fmain, _ := newArray(t, eplog.Config{})
	data := make([]byte, a.Chunks()*int64(chunk))
	r := rand.New(rand.NewSource(2))
	r.Read(data)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	upd := make([]byte, 3*chunk)
	r.Read(upd)
	if err := a.Write(5, upd); err != nil {
		t.Fatal(err)
	}
	copy(data[5*chunk:], upd)

	fmain[2].Fail()
	fmain[6].Fail()
	got := make([]byte, len(data))
	if err := a.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("double-degraded read mismatch")
	}
	if err := a.Rebuild(2, eplog.NewMemDevice(stripes*3, chunk)); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(6, eplog.NewMemDevice(stripes*3, chunk)); err != nil {
		t.Fatal(err)
	}
	if err := a.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-rebuild read mismatch")
	}
}

func TestPublicCommitAndLogRecovery(t *testing.T) {
	a, _, flogs := newArray(t, eplog.Config{})
	data := make([]byte, a.Chunks()*int64(chunk))
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(3, make([]byte, chunk)); err != nil {
		t.Fatal(err)
	}
	if a.PendingLogStripes() == 0 {
		t.Fatal("update produced no log stripe")
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if a.PendingLogStripes() != 0 {
		t.Error("commit left pending log stripes")
	}
	flogs[0].Fail()
	if err := a.RecoverLogDevice(0, eplog.NewMemDevice(8192, chunk)); err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.Commits < 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPublicCheckpointRestart(t *testing.T) {
	cfg := eplog.Config{K: 4, Stripes: 32}
	n := 6
	devs := make([]eplog.BlockDevice, n)
	for i := range devs {
		devs[i] = eplog.NewMemDevice(128, chunk)
	}
	logs := []eplog.BlockDevice{eplog.NewMemDevice(4096, chunk), eplog.NewMemDevice(4096, chunk)}
	a, err := eplog.New(devs, logs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Checkpoint(true); !errors.Is(err, eplog.ErrNoMetadataVolume) {
		t.Fatalf("checkpoint without volume error = %v", err)
	}

	meta := eplog.NewMemDevice(2048, chunk)
	if err := a.FormatMetadataVolume(meta, 512); err != nil {
		t.Fatal(err)
	}

	data := make([]byte, a.Chunks()*int64(chunk))
	r := rand.New(rand.NewSource(3))
	r.Read(data)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Checkpoint(true); err != nil {
		t.Fatal(err)
	}
	upd := make([]byte, 2*chunk)
	r.Read(upd)
	if err := a.Write(7, upd); err != nil {
		t.Fatal(err)
	}
	copy(data[7*chunk:], upd)
	if err := a.Checkpoint(false); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen from the metadata volume over the same devices.
	b, err := eplog.Open(devs, logs, cfg, meta)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := b.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reopened array returned wrong contents")
	}
}

func TestBaselinesRoundTripAndRebuild(t *testing.T) {
	mk := func() []eplog.BlockDevice {
		devs := make([]eplog.BlockDevice, 6)
		for i := range devs {
			devs[i] = eplog.NewMemDevice(stripes, chunk)
		}
		return devs
	}
	logs := []eplog.BlockDevice{eplog.NewMemDevice(8192, chunk), eplog.NewMemDevice(8192, chunk)}

	raidArr, err := eplog.NewRAID(mk(), 4, stripes)
	if err != nil {
		t.Fatal(err)
	}
	plArr, err := eplog.NewParityLog(mk(), logs, 4, stripes)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]eplog.Store{"raid": raidArr, "pl": plArr} {
		data := make([]byte, s.Chunks()*int64(chunk))
		rand.New(rand.NewSource(4)).Read(data)
		if err := s.Write(0, data); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Write(9, data[:2*chunk]); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		copy(data[9*chunk:], data[:2*chunk])
		got := make([]byte, len(data))
		if err := s.Read(0, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: round trip mismatch", name)
		}
		if err := s.Commit(); err != nil {
			t.Fatalf("%s commit: %v", name, err)
		}
	}
}

func TestFileDevicePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	d, err := eplog.OpenFileDevice(path, 16, chunk)
	if err != nil {
		t.Fatal(err)
	}
	p := bytes.Repeat([]byte{7}, chunk)
	if err := d.WriteChunk(3, p); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := eplog.OpenFileDevice(path, 16, chunk)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := make([]byte, chunk)
	if err := d2.ReadChunk(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("file device lost data")
	}
}

func TestSimulatedDevices(t *testing.T) {
	s, err := eplog.NewSimulatedSSD(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, s.ChunkSize())
	if err := s.WriteChunk(0, p); err != nil {
		t.Fatal(err)
	}
	hostWrites, _, _, _, wa, ok := eplog.SSDStats(s)
	if !ok || hostWrites != 1 || wa != 1 {
		t.Errorf("SSD stats = %d %v %v", hostWrites, wa, ok)
	}
	if _, _, _, _, _, ok := eplog.SSDStats(eplog.NewMemDevice(4, chunk)); ok {
		t.Error("SSDStats accepted a non-SSD device")
	}
	h, err := eplog.NewSimulatedHDD(128, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteChunkAt(0, 0, p); err != nil {
		t.Fatal(err)
	}
}

func TestArrayWithSimulatedDevices(t *testing.T) {
	// End-to-end over the simulators: EPLog on FTL SSDs + HDD logs.
	devs := make([]eplog.BlockDevice, 5)
	for i := range devs {
		d, err := eplog.NewSimulatedSSD(8 << 20)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	h, err := eplog.NewSimulatedHDD(4096, chunk)
	if err != nil {
		t.Fatal(err)
	}
	a, err := eplog.New(devs, []eplog.BlockDevice{h}, eplog.Config{K: 4, Stripes: 128})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8*chunk)
	rand.New(rand.NewSource(5)).Read(data)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := a.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("simulated-device round trip mismatch")
	}
	end, err := a.WriteAt(0, 0, data[:chunk])
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Error("timed write returned no latency")
	}
}

func TestAutoCheckpoint(t *testing.T) {
	cfg := eplog.Config{K: 4, Stripes: 32, CheckpointEvery: 5}
	devs := make([]eplog.BlockDevice, 5)
	for i := range devs {
		devs[i] = eplog.NewMemDevice(128, chunk)
	}
	logs := []eplog.BlockDevice{eplog.NewMemDevice(4096, chunk)}
	a, err := eplog.New(devs, logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := eplog.NewMemDevice(2048, chunk)
	if err := a.FormatMetadataVolume(meta, 512); err != nil {
		t.Fatal(err)
	}
	if err := a.Checkpoint(true); err != nil {
		t.Fatal(err)
	}

	data := make([]byte, a.Chunks()*int64(chunk))
	rand.New(rand.NewSource(9)).Read(data)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	// 12 more single-chunk writes -> at least two auto incremental
	// checkpoints; the state must be reopenable without a manual one.
	for i := 0; i < 12; i++ {
		upd := make([]byte, chunk)
		rand.New(rand.NewSource(int64(10 + i))).Read(upd)
		if err := a.Write(int64(i), upd); err != nil {
			t.Fatal(err)
		}
		copy(data[i*chunk:], upd)
	}
	b, err := eplog.Open(devs, logs, cfg, meta)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := b.Read(0, got); err != nil {
		t.Fatal(err)
	}
	// The final writes may post-date the last auto checkpoint (every 5
	// requests, so requests 1-10 = the fill plus updates 0-8 are
	// certainly covered): verify those.
	if !bytes.Equal(got[:9*chunk], data[:9*chunk]) {
		t.Fatal("auto-checkpointed state lost acknowledged writes")
	}
}

func TestBaselineVerify(t *testing.T) {
	devs := make([]eplog.BlockDevice, 5)
	for i := range devs {
		devs[i] = eplog.NewMemDevice(stripes, chunk)
	}
	r, err := eplog.NewRAID(devs, 4, stripes)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(0, make([]byte, 8*chunk)); err != nil {
		t.Fatal(err)
	}
	bad, err := r.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean RAID failed scrub: %v", bad)
	}

	logs := []eplog.BlockDevice{eplog.NewMemDevice(4096, chunk)}
	devs2 := make([]eplog.BlockDevice, 5)
	for i := range devs2 {
		devs2[i] = eplog.NewMemDevice(stripes, chunk)
	}
	p, err := eplog.NewParityLog(devs2, logs, 4, stripes)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(0, make([]byte, 8*chunk)); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(2, make([]byte, chunk)); err != nil { // leaves a delta
		t.Fatal(err)
	}
	bad, err = p.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("consistent PL failed scrub: %v", bad)
	}
}

func TestHDDStats(t *testing.T) {
	h, err := eplog.NewSimulatedHDD(64, chunk)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, chunk)
	if err := h.WriteChunk(0, p); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteChunk(1, p); err != nil {
		t.Fatal(err)
	}
	_, writes, streamed, positioned, ok := eplog.HDDStats(h)
	if !ok || writes != 2 || streamed+positioned != 2 {
		t.Errorf("HDD stats = writes %d, streamed %d, positioned %d, ok %v", writes, streamed, positioned, ok)
	}
	if _, _, _, _, ok := eplog.HDDStats(eplog.NewMemDevice(4, chunk)); ok {
		t.Error("HDDStats accepted a non-HDD device")
	}
}
