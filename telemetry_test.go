package eplog_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/eplog/eplog"
)

// TestServeTelemetryConcurrentSoak exercises the live telemetry endpoint
// the way an operator would: a sharded, parallel array under concurrent
// write/read load while a scraper hammers every endpoint. All four paths
// must answer 200 with non-empty bodies throughout, and the span and
// metrics payloads must stay well-formed mid-flight.
func TestServeTelemetryConcurrentSoak(t *testing.T) {
	a, _, _ := newArray(t, eplog.Config{
		CommitEvery: 16,
		TraceEvents: 256,
		Spans:       128,
		Shards:      2,
		Workers:     2,
	})
	defer a.Close()
	srv, err := a.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	writeErrs := make([]error, 4)
	for w := range writeErrs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, chunk)
			rbuf := make([]byte, chunk)
			lba := int64(w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				buf[0] = byte(i)
				if err := a.Write(lba, buf); err != nil {
					writeErrs[w] = err
					return
				}
				if err := a.Read(lba, rbuf); err != nil {
					writeErrs[w] = err
					return
				}
				lba = (lba + 4) % a.Chunks()
			}
		}(w)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	paths := []string{"/metrics", "/metrics.json", "/spans", "/healthz", "/debug/pprof/"}
	bodies := map[string]string{}
	for i := 0; i < 15; i++ {
		for _, p := range paths {
			resp, err := client.Get(base + p)
			if err != nil {
				t.Fatalf("GET %s (iteration %d): %v", p, i, err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("GET %s: read body: %v", p, err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d", p, resp.StatusCode)
			}
			if len(body) == 0 && p != "/spans" {
				t.Fatalf("GET %s: empty body", p)
			}
			bodies[p] = string(body)
		}
	}
	close(stop)
	wg.Wait()
	for w, err := range writeErrs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}

	// The last scrape happened under full load; its payloads must already
	// be well-formed.
	if !strings.Contains(bodies["/metrics"], "eplog_core_write_latency_bucket") {
		t.Errorf("/metrics missing write latency histogram:\n%.400s", bodies["/metrics"])
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(bodies["/metrics.json"]), &snap); err != nil {
		t.Errorf("/metrics.json not valid JSON: %v", err)
	}
	if !strings.HasPrefix(bodies["/healthz"], "ok") {
		t.Errorf("/healthz = %q", bodies["/healthz"])
	}
	for _, line := range strings.Split(strings.TrimSpace(bodies["/spans"]), "\n") {
		if line == "" {
			continue
		}
		var tree eplog.SpanTree
		if err := json.Unmarshal([]byte(line), &tree); err != nil {
			t.Fatalf("/spans line not valid JSON (%v): %.200s", err, line)
		}
		if tree.Kind == "" {
			t.Fatalf("/spans tree missing kind: %.200s", line)
		}
	}

	// The final quiesced state serves spans for the completed operations.
	if len(a.Spans()) == 0 {
		t.Error("array retained no span trees after the soak")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Error("request after Close succeeded")
	}
}
