module github.com/eplog/eplog

go 1.22
