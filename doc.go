// Package eplog is a storage library implementing elastic parity logging
// for SSD RAID arrays, after Li, Chan, Lee and Xu, "Elastic Parity Logging
// for SSD RAID Arrays" (DSN 2016).
//
// An EPLog array stores data chunks on a main array of SSD-class devices
// and redirects all parity traffic to separate log devices (HDD-class in
// the paper). Log chunks are computed from newly written data only — the
// write path never pre-reads — over "elastic" log stripes that may cover a
// partial data stripe or span several. Updates are written out-of-place at
// the system level so that old versions remain addressable; a background
// parity commit folds the latest data into the on-array parity without
// reading the log devices, then releases old versions and log space.
//
// The result, relative to conventional software RAID, is less write
// traffic and garbage collection on the SSDs (endurance), tolerance of any
// m device failures under arbitrary k-of-n erasure coding (reliability),
// and higher small-write throughput (performance).
//
// # Quick start
//
//	devs := make([]eplog.BlockDevice, 8)
//	for i := range devs {
//		devs[i] = eplog.NewMemDevice(4096, 4096) // 16 MiB each
//	}
//	logs := []eplog.BlockDevice{
//		eplog.NewMemDevice(16384, 4096),
//		eplog.NewMemDevice(16384, 4096),
//	}
//	arr, err := eplog.New(devs, logs, eplog.Config{K: 6, Stripes: 2048})
//	if err != nil { ... }
//	err = arr.Write(0, data)     // any chunk-aligned span
//	err = arr.Read(0, buf)
//	err = arr.Commit()           // parity commit
//
// The internal packages additionally provide the paper's two baselines
// (conventional RAID and original parity logging), an FTL/SSD simulator,
// an HDD latency model, trace tooling, the MTTDL reliability analysis, and
// a harness regenerating every table and figure of the paper's evaluation;
// see DESIGN.md and EXPERIMENTS.md.
package eplog
