// Package kv is a small log-structured key-value store that runs on any
// byte-addressed block device — in particular an eplog.IO over an EPLog
// array, demonstrating the "upper-layer application" role of the paper's
// user-level block device. Records are appended to one of two on-device
// zones with CRC framing; an in-memory index maps keys to record offsets;
// compaction rewrites the live set into the other zone and flips the
// header atomically, so a crash at any point leaves a consistent store
// (torn tails are detected by CRC and truncated on open).
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Device is the backing storage: byte-addressed random access with a fixed
// size. *eplog.IO satisfies it; so does any RAM or file shim.
type Device interface {
	io.ReaderAt
	io.WriterAt
	Size() int64
}

// Errors returned by the store.
var (
	ErrNotFound  = errors.New("kv: key not found")
	ErrKeyTooBig = errors.New("kv: key exceeds 64KiB")
	ErrFull      = errors.New("kv: zone full; compact or grow the device")
	ErrCorrupt   = errors.New("kv: corrupt store")
)

const (
	magic      = 0x4b56455033 // "KVEP3"
	headerSize = 64
	recHeader  = 12 // klen u32, vlen u32, crc u32 (of key+value)
	tombstone  = ^uint32(0)
	maxKeyLen  = 64 << 10
)

// Store is a log-structured KV store. It is not safe for concurrent use;
// wrap it with your own locking (eplog.IO already serializes the device
// underneath).
type Store struct {
	dev      Device
	zoneSize int64
	zone     int   // active zone, 0 or 1
	head     int64 // next append offset within the active zone
	index    map[string]int64
	// liveBytes approximates the live record volume for compaction
	// decisions.
	liveBytes int64
}

// Format initializes an empty store on the device and returns it.
func Format(dev Device) (*Store, error) {
	zone := (dev.Size() - headerSize) / 2
	if zone < recHeader+1 {
		return nil, fmt.Errorf("kv: device too small (%d bytes)", dev.Size())
	}
	s := &Store{dev: dev, zoneSize: zone, index: make(map[string]int64)}
	if err := s.writeHeader(); err != nil {
		return nil, err
	}
	// Invalidate the first record slot of both zones so a previous
	// store's records cannot be replayed.
	zero := make([]byte, recHeader)
	if _, err := dev.WriteAt(zero, s.zoneStart(0)); err != nil {
		return nil, err
	}
	if _, err := dev.WriteAt(zero, s.zoneStart(1)); err != nil {
		return nil, err
	}
	return s, nil
}

// Open mounts an existing store, rebuilding the index by scanning the
// active zone up to the first invalid record (a torn tail after a crash is
// discarded).
func Open(dev Device) (*Store, error) {
	h := make([]byte, headerSize)
	if _, err := dev.ReadAt(h, 0); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(h[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if got, want := binary.LittleEndian.Uint32(h[20:]), crc32.ChecksumIEEE(h[:20]); got != want {
		return nil, fmt.Errorf("%w: header CRC", ErrCorrupt)
	}
	s := &Store{
		dev:      dev,
		zoneSize: int64(binary.LittleEndian.Uint64(h[8:])),
		zone:     int(binary.LittleEndian.Uint32(h[16:])),
		index:    make(map[string]int64),
	}
	if s.zoneSize <= 0 || s.zone < 0 || s.zone > 1 ||
		headerSize+2*s.zoneSize > dev.Size() {
		return nil, fmt.Errorf("%w: implausible geometry", ErrCorrupt)
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) zoneStart(z int) int64 { return headerSize + int64(z)*s.zoneSize }

func (s *Store) writeHeader() error {
	h := make([]byte, headerSize)
	binary.LittleEndian.PutUint64(h[0:], magic)
	binary.LittleEndian.PutUint64(h[8:], uint64(s.zoneSize))
	binary.LittleEndian.PutUint32(h[16:], uint32(s.zone))
	binary.LittleEndian.PutUint32(h[20:], crc32.ChecksumIEEE(h[:20]))
	_, err := s.dev.WriteAt(h, 0)
	return err
}

// replay scans the active zone, rebuilding index and head.
func (s *Store) replay() error {
	base := s.zoneStart(s.zone)
	off := int64(0)
	hdr := make([]byte, recHeader)
	for {
		if off+recHeader > s.zoneSize {
			break
		}
		if _, err := s.dev.ReadAt(hdr, base+off); err != nil {
			return err
		}
		klen := binary.LittleEndian.Uint32(hdr[0:])
		vlen := binary.LittleEndian.Uint32(hdr[4:])
		if klen == 0 || klen > maxKeyLen {
			break // end of log (or torn record)
		}
		vl := int64(vlen)
		if vlen == tombstone {
			vl = 0
		}
		total := recHeader + int64(klen) + vl
		if off+total > s.zoneSize {
			break
		}
		body := make([]byte, int64(klen)+vl)
		if _, err := s.dev.ReadAt(body, base+off+recHeader); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[8:]) {
			break // torn tail
		}
		key := string(body[:klen])
		if vlen == tombstone {
			if prev, ok := s.index[key]; ok {
				s.dropLive(prev)
			}
			delete(s.index, key)
		} else {
			if prev, ok := s.index[key]; ok {
				s.dropLive(prev)
			}
			s.index[key] = off
			s.liveBytes += total
		}
		off += total
	}
	s.head = off
	return nil
}

// dropLive subtracts a superseded record's size from the live estimate.
func (s *Store) dropLive(off int64) {
	hdr := make([]byte, recHeader)
	if _, err := s.dev.ReadAt(hdr, s.zoneStart(s.zone)+off); err != nil {
		return
	}
	klen := binary.LittleEndian.Uint32(hdr[0:])
	vlen := binary.LittleEndian.Uint32(hdr[4:])
	if vlen == tombstone {
		vlen = 0
	}
	s.liveBytes -= recHeader + int64(klen) + int64(vlen)
}

// append writes one record to the active zone and returns its offset.
func (s *Store) append(key string, value []byte, isTombstone bool) (int64, error) {
	if len(key) == 0 {
		return 0, fmt.Errorf("kv: empty key")
	}
	if len(key) > maxKeyLen {
		return 0, ErrKeyTooBig
	}
	vlen := uint32(len(value))
	if isTombstone {
		vlen = tombstone
		value = nil
	}
	total := int64(recHeader + len(key) + len(value))
	// Keep one record header of zeroes after the tail as the end marker.
	if s.head+total+recHeader > s.zoneSize {
		return 0, ErrFull
	}
	// The record is written together with a zeroed header slot after it:
	// the end-of-log terminator. Without it, records from a previous
	// life of this zone (before a compaction flipped away from it) could
	// be replayed past the true tail after a reopen.
	rec := make([]byte, total+recHeader)
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:], vlen)
	copy(rec[recHeader:], key)
	copy(rec[recHeader+len(key):total], value)
	binary.LittleEndian.PutUint32(rec[8:], crc32.ChecksumIEEE(rec[recHeader:total]))
	off := s.head
	if _, err := s.dev.WriteAt(rec, s.zoneStart(s.zone)+off); err != nil {
		return 0, err
	}
	s.head += total
	return off, nil
}

// Put stores value under key, compacting automatically if the zone fills
// and enough garbage exists.
func (s *Store) Put(key string, value []byte) error {
	off, err := s.append(key, value, false)
	if errors.Is(err, ErrFull) && s.liveBytes < s.zoneSize/2 {
		if cerr := s.Compact(); cerr != nil {
			return cerr
		}
		off, err = s.append(key, value, false)
	}
	if err != nil {
		return err
	}
	if prev, ok := s.index[key]; ok {
		s.dropLive(prev)
	}
	s.index[key] = off
	s.liveBytes += recHeader + int64(len(key)) + int64(len(value))
	return nil
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	off, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	hdr := make([]byte, recHeader)
	base := s.zoneStart(s.zone)
	if _, err := s.dev.ReadAt(hdr, base+off); err != nil {
		return nil, err
	}
	klen := binary.LittleEndian.Uint32(hdr[0:])
	vlen := binary.LittleEndian.Uint32(hdr[4:])
	if vlen == tombstone {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	val := make([]byte, vlen)
	if _, err := s.dev.ReadAt(val, base+off+recHeader+int64(klen)); err != nil {
		return nil, err
	}
	return val, nil
}

// Delete removes key; deleting an absent key is a no-op.
func (s *Store) Delete(key string) error {
	if _, ok := s.index[key]; !ok {
		return nil
	}
	if _, err := s.append(key, nil, true); err != nil {
		return err
	}
	s.dropLive(s.index[key])
	delete(s.index, key)
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.index) }

// Keys returns the live keys in sorted order.
func (s *Store) Keys() []string {
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Compact rewrites the live records into the inactive zone and flips the
// header. A crash before the header write leaves the old zone authoritative;
// after it, the new one — either way the store stays consistent.
func (s *Store) Compact() error {
	oldZone, oldHead, oldIndex := s.zone, s.head, s.index
	s.zone = 1 - s.zone
	s.head = 0
	s.index = make(map[string]int64, len(oldIndex))
	s.liveBytes = 0

	keys := make([]string, 0, len(oldIndex))
	for k := range oldIndex {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	base := s.zoneStart(oldZone)
	hdr := make([]byte, recHeader)
	for _, key := range keys {
		off := oldIndex[key]
		if _, err := s.dev.ReadAt(hdr, base+off); err != nil {
			return err
		}
		klen := binary.LittleEndian.Uint32(hdr[0:])
		vlen := binary.LittleEndian.Uint32(hdr[4:])
		val := make([]byte, vlen)
		if _, err := s.dev.ReadAt(val, base+off+recHeader+int64(klen)); err != nil {
			return err
		}
		newOff, err := s.append(key, val, false)
		if err != nil {
			// Roll back to the intact old zone.
			s.zone, s.head, s.index = oldZone, oldHead, oldIndex
			return err
		}
		s.index[key] = newOff
		s.liveBytes += recHeader + int64(len(key)) + int64(vlen)
	}
	// Terminate the new log, then commit the flip.
	zero := make([]byte, recHeader)
	if s.head+recHeader <= s.zoneSize {
		if _, err := s.dev.WriteAt(zero, s.zoneStart(s.zone)+s.head); err != nil {
			return err
		}
	}
	return s.writeHeader()
}

// Sync asks the backing device to make everything durable; over an EPLog
// array this is a parity commit.
func (s *Store) Sync() error {
	if c, ok := s.dev.(interface{ Commit() error }); ok {
		return c.Commit()
	}
	return nil
}
