package kv_test

import (
	"fmt"

	"github.com/eplog/eplog"
	"github.com/eplog/eplog/kv"
)

// Run the KV store on an EPLog array: byte addressing comes from
// eplog.NewIO and Sync maps to a parity commit.
func Example() {
	devs := make([]eplog.BlockDevice, 5)
	for i := range devs {
		devs[i] = eplog.NewMemDevice(96, 4096)
	}
	logs := []eplog.BlockDevice{eplog.NewMemDevice(1024, 4096)}
	arr, err := eplog.New(devs, logs, eplog.Config{K: 4, Stripes: 32})
	if err != nil {
		panic(err)
	}
	store, err := kv.Format(eplog.NewIO(arr))
	if err != nil {
		panic(err)
	}

	if err := store.Put("greeting", []byte("hello from eplog")); err != nil {
		panic(err)
	}
	if err := store.Sync(); err != nil { // parity commit underneath
		panic(err)
	}
	v, err := store.Get("greeting")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", v)
	// Output:
	// hello from eplog
}
