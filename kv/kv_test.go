package kv

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/eplog/eplog"
)

// memDevice is a plain RAM Device for unit tests.
type memDevice struct{ data []byte }

func newMemDevice(size int64) *memDevice { return &memDevice{data: make([]byte, size)} }

func (d *memDevice) Size() int64 { return int64(len(d.data)) }

func (d *memDevice) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > d.Size() {
		return 0, fmt.Errorf("memDevice: out of range")
	}
	return copy(p, d.data[off:]), nil
}

func (d *memDevice) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > d.Size() {
		return 0, fmt.Errorf("memDevice: out of range")
	}
	return copy(d.data[off:], p), nil
}

func newStore(t *testing.T, size int64) (*Store, *memDevice) {
	t.Helper()
	dev := newMemDevice(size)
	s, err := Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func TestPutGetDelete(t *testing.T) {
	s, _ := newStore(t, 1<<20)
	if err := s.Put("alpha", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("beta", []byte("two")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("alpha")
	if err != nil || string(v) != "one" {
		t.Fatalf("Get(alpha) = %q, %v", v, err)
	}
	// Overwrite.
	if err := s.Put("alpha", []byte("uno")); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get("alpha")
	if string(v) != "uno" {
		t.Fatalf("Get after overwrite = %q", v)
	}
	if err := s.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("alpha"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != "beta" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestValidation(t *testing.T) {
	s, _ := newStore(t, 1<<20)
	if err := s.Put("", []byte("x")); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Put(string(make([]byte, maxKeyLen+1)), nil); !errors.Is(err, ErrKeyTooBig) {
		t.Errorf("oversized key error = %v", err)
	}
	if _, err := Format(newMemDevice(32)); err == nil {
		t.Error("tiny device accepted")
	}
	if _, err := Open(newMemDevice(1 << 20)); !errors.Is(err, ErrCorrupt) {
		t.Error("unformatted device opened")
	}
}

func TestReopenReplaysLog(t *testing.T) {
	s, dev := newStore(t, 1<<20)
	want := map[string]string{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", r.Intn(50))
		switch r.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("val-%d", i)
			if err := s.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			want[k] = v
		case 2:
			if err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(want, k)
		}
	}
	s2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, err := s2.Get(k)
		if err != nil || string(got) != v {
			t.Fatalf("reopened Get(%q) = %q, %v; want %q", k, got, err, v)
		}
	}
}

func TestTornTailDiscardedOnOpen(t *testing.T) {
	s, dev := newStore(t, 1<<20)
	if err := s.Put("good", []byte("value")); err != nil {
		t.Fatal(err)
	}
	// Hand-write a torn record after the tail: plausible lengths, bad CRC.
	torn := make([]byte, recHeader+8)
	torn[0] = 4 // klen=4
	torn[4] = 4 // vlen=4
	if _, err := dev.WriteAt(torn, s.zoneStart(s.zone)+s.head); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("torn tail not discarded: Len = %d", s2.Len())
	}
	// The store remains writable at the truncated head.
	if err := s2.Put("after", []byte("crash")); err != nil {
		t.Fatal(err)
	}
	if v, err := s2.Get("after"); err != nil || string(v) != "crash" {
		t.Fatalf("post-crash put/get = %q, %v", v, err)
	}
}

func TestCompaction(t *testing.T) {
	s, dev := newStore(t, 64<<10)
	// Churn the same small key set until the zone would overflow; the
	// automatic compaction must keep it working.
	val := bytes.Repeat([]byte{7}, 512)
	for i := 0; i < 500; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i%8), val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	for i := 0; i < 8; i++ {
		v, err := s.Get(fmt.Sprintf("k%d", i))
		if err != nil || !bytes.Equal(v, val) {
			t.Fatalf("Get(k%d) after compaction = %v", i, err)
		}
	}
	// Reopen after compaction: the flipped header points at the live zone.
	s2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 8 {
		t.Fatalf("reopened Len = %d, want 8", s2.Len())
	}
}

func TestExplicitCompactShrinks(t *testing.T) {
	s, _ := newStore(t, 256<<10)
	for i := 0; i < 100; i++ {
		if err := s.Put("hot", bytes.Repeat([]byte{byte(i)}, 256)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.head
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.head >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before, s.head)
	}
	v, err := s.Get("hot")
	if err != nil || !bytes.Equal(v, bytes.Repeat([]byte{99}, 256)) {
		t.Fatalf("Get after compact = %v", err)
	}
}

func TestStoreFullWithoutGarbage(t *testing.T) {
	s, _ := newStore(t, 8<<10)
	// Distinct keys, no garbage to reclaim: must eventually report full.
	var sawFull bool
	for i := 0; i < 10000; i++ {
		err := s.Put(fmt.Sprintf("key-%05d", i), bytes.Repeat([]byte{1}, 64))
		if errors.Is(err, ErrFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("store never reported ErrFull")
	}
}

// TestOnEPLogArray runs the KV store over a real EPLog array with a device
// failure in the middle of the workload.
func TestOnEPLogArray(t *testing.T) {
	devs := make([]eplog.BlockDevice, 5)
	faulty := make([]*eplog.FaultyDevice, 5)
	for i := range devs {
		f := eplog.NewFaultyDevice(eplog.NewMemDevice(128, 4096))
		faulty[i] = f
		devs[i] = f
	}
	logs := []eplog.BlockDevice{eplog.NewMemDevice(4096, 4096)}
	arr, err := eplog.New(devs, logs, eplog.Config{K: 4, Stripes: 48})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Format(eplog.NewIO(arr))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("user:%d", i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil { // parity commit underneath
		t.Fatal(err)
	}
	faulty[2].Fail()
	for i := 0; i < 50; i++ {
		v, err := s.Get(fmt.Sprintf("user:%d", i))
		if err != nil || string(v) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("degraded Get(user:%d) = %q, %v", i, v, err)
		}
	}
	// Writes keep working in degraded mode too.
	if err := s.Put("during-failure", []byte("still here")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("during-failure"); string(v) != "still here" {
		t.Fatal("degraded put/get mismatch")
	}
}

// TestQuickAgainstMap checks the store against a plain map under random
// operation sequences with periodic reopen and compaction.
func TestQuickAgainstMap(t *testing.T) {
	prop := func(seed int64) bool {
		dev := newMemDevice(512 << 10)
		s, err := Format(dev)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		shadow := map[string]string{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%d", r.Intn(30))
			switch r.Intn(10) {
			case 0:
				if err := s.Delete(k); err != nil {
					return false
				}
				delete(shadow, k)
			case 1:
				if err := s.Compact(); err != nil {
					return false
				}
			case 2:
				if s, err = Open(dev); err != nil {
					return false
				}
			default:
				v := fmt.Sprintf("v%d-%d", i, r.Int63())
				if err := s.Put(k, []byte(v)); err != nil {
					return false
				}
				shadow[k] = v
			}
		}
		if s.Len() != len(shadow) {
			return false
		}
		for k, v := range shadow {
			got, err := s.Get(k)
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
