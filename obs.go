package eplog

import (
	"io"
	"strconv"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
)

// MetricsSnapshot is a point-in-time value copy of an array's metrics:
// counters, gauges, and latency histograms with precomputed p50/p95/p99.
// Snapshots are safe to retain; later array activity does not alter them.
// WriteJSON and WritePrometheus serialize a snapshot.
type MetricsSnapshot = obs.Snapshot

// TraceEvent is one structured event from the array's trace ring: writes,
// reads, log appends, parity commits, checkpoints, rebuilds, SSD GC runs,
// and buffer evictions, each stamped with virtual time and duration.
type TraceEvent = obs.Event

// DefaultTraceEvents is the default trace ring capacity.
const DefaultTraceEvents = obs.DefaultRingEvents

// DefaultSpanTrees is a reasonable Config.Spans value: enough retained
// trees per shard to cover recent history without unbounded memory.
const DefaultSpanTrees = obs.DefaultSpanTrees

// WriteTrace writes events as JSON Lines, one event per line.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteJSONL(w, events)
}

// Metrics returns a snapshot of the array's metrics registry. It is empty
// unless Config.TraceEvents enabled observability. Metrics, Trace, and
// TraceDropped are safe to call while other goroutines use the array: the
// sink's counters are atomic and its histograms, registry, and trace ring
// carry their own locks, so a snapshot is a consistent value copy.
func (a *Array) Metrics() MetricsSnapshot { return a.sink.Snapshot() }

// Trace returns the retained trace events in chronological order. When
// more than Config.TraceEvents events were emitted, the oldest were
// dropped; TraceDropped reports how many.
func (a *Array) Trace() []TraceEvent { return a.sink.Events() }

// TraceDropped reports how many events fell out of the trace ring.
func (a *Array) TraceDropped() uint64 { return a.sink.Dropped() }

// SpanTree is one completed causal span tree from the flight recorder: an
// operation root (write, read, commit, rebuild) with nested phase spans
// and, on serial engines, per-device I/O leaves. Times are virtual-time
// seconds; Dur is the span's extent. Trees are value copies — safe to
// retain and serialize.
type SpanTree = obs.SpanSnapshot

// WriteSpans writes span trees as JSON Lines, one complete tree per line.
func WriteSpans(w io.Writer, spans []SpanTree) error {
	return obs.WriteSpanJSONL(w, spans)
}

// Spans returns the retained causal span trees across all shards, ordered
// by start time. It is empty unless Config.Spans enabled span tracing.
// Safe to call concurrently with array activity: trees are published to
// the per-shard rings only when complete, and Spans deep-copies them
// under the recorders' locks.
func (a *Array) Spans() []SpanTree { return a.sink.Spans() }

// SpansDropped reports how many recorded span trees have been evicted
// from the flight-recorder rings to make room for newer ones.
func (a *Array) SpansDropped() uint64 { return a.sink.SpansDropped() }

// observer is implemented by the simulated devices (SSD, HDD) that can
// push their internal activity — GC runs, wear leveling, seek/stream
// classification — into a sink.
type observer interface {
	SetObserver(sink *obs.Sink, dev int)
}

// instrument converts a public device slice for the internal packages,
// wrapping each device with per-device op/byte/latency metrics and
// attaching simulator observers. With a nil sink it degrades to a plain
// conversion.
func instrument(sink *obs.Sink, role string, devs []BlockDevice) []device.Dev {
	if sink == nil {
		return toInternal(devs)
	}
	out := make([]device.Dev, len(devs))
	for i, d := range devs {
		out[i] = instrumentOne(sink, role, i, d)
	}
	return out
}

func instrumentOne(sink *obs.Sink, role string, idx int, d BlockDevice) device.Dev {
	if o, ok := d.(observer); ok {
		o.SetObserver(sink, idx)
	}
	return device.NewTraced(d, role+strconv.Itoa(idx), sink)
}
