package eplog

import (
	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/telemetry"
)

// TelemetryServer is a running live-telemetry HTTP endpoint; see
// Array.ServeTelemetry.
type TelemetryServer = telemetry.Server

// telemetrySource adapts an Array to the telemetry server's Source
// interface without widening the Array API (Array.Spans returns the
// public SpanTree alias; the adapter keeps the internal obs types out of
// the method set the compiler checks against).
type telemetrySource struct{ a *Array }

func (s telemetrySource) Metrics() obs.Snapshot     { return s.a.sink.Snapshot() }
func (s telemetrySource) Spans() []obs.SpanSnapshot { return s.a.sink.Spans() }

// ServeTelemetry starts a live telemetry HTTP server for this array on
// addr (host:port; use ":0" for an ephemeral port and read it back with
// Addr). The server exposes /metrics (Prometheus text format),
// /metrics.json, /spans (JSON Lines, one span tree per line), /healthz,
// and /debug/pprof/. Scrapes snapshot the sink on demand and never block
// the engine's hot paths beyond the sink's own short critical sections.
// The caller owns the server and should Close it when done; an array
// without observability enabled serves empty metrics and spans.
func (a *Array) ServeTelemetry(addr string) (*TelemetryServer, error) {
	return telemetry.Serve(addr, telemetrySource{a: a})
}
