package eplog

import (
	"errors"
	"fmt"
	"sync"

	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/metadata"
	"github.com/eplog/eplog/internal/obs"
)

// Config parameterizes an EPLog array.
type Config struct {
	// K is the number of data chunks per stripe. With n devices in the
	// main array, the array tolerates n-K device failures and needs n-K
	// log devices.
	K int
	// Stripes is the number of data stripes. Each main-array device must
	// have more than Stripes chunks; the excess is the no-overwrite
	// update area.
	Stripes int64
	// DeviceBufferChunks enables the per-SSD update buffers when > 0.
	DeviceBufferChunks int
	// HotColdGrouping evicts the coldest buffered chunk first instead of
	// FIFO, keeping write-hot chunks buffered longer.
	HotColdGrouping bool
	// StripeBufferStripes enables the new-write stripe buffer when > 0.
	StripeBufferStripes int
	// CommitEvery triggers an automatic parity commit after that many
	// write requests when > 0.
	CommitEvery int
	// TrimOnCommit issues TRIM for chunks released by parity commit.
	TrimOnCommit bool
	// CommitGuardChunks forces a commit when a device's free update
	// space falls to this many chunks; zero selects a default.
	CommitGuardChunks int64
	// CheckpointEvery writes an incremental metadata checkpoint after
	// that many write requests when > 0 and a metadata volume is
	// attached — the paper's "triggered regularly in the background".
	CheckpointEvery int
	// TraceEvents enables observability when > 0: the array keeps a
	// metrics registry (per-device op counters and latency histograms,
	// write/read/commit-phase latencies, GC activity) and a trace ring
	// retaining the most recent TraceEvents structured events. Read them
	// with Metrics and Trace. Zero disables observability at no cost.
	TraceEvents int
	// Spans enables causal span tracing when > 0: each engine shard keeps
	// a flight recorder retaining up to Spans recently completed span
	// trees — a write, read, commit, or rebuild root with its phase
	// children (direct-stripe writes, log appends, commit flush/fold) and,
	// on serial engines, per-device I/O leaves. Read them with Spans or
	// serve them live with ServeTelemetry. Span recording reuses a
	// per-shard node pool, so the steady state allocates nothing.
	// Setting Spans > 0 enables the metrics registry even when
	// TraceEvents is 0 (the trace ring then uses DefaultTraceEvents).
	Spans int
	// SpanSampling records one operation root in every SpanSampling when
	// > 1; values <= 1 record every operation. Commits and rebuilds are
	// always recorded.
	SpanSampling int
	// Workers bounds the worker pool that parallelizes an operation's
	// expensive phases (Reed-Solomon coding and per-device I/O fan-out).
	// Values <= 1 select the serial mode, whose virtual-time accounting
	// is bit-for-bit that of the single-threaded engine; the array is
	// safe for concurrent use either way.
	Workers int
	// Shards partitions the stripes into that many independent stripe
	// groups, each with its own lock, so requests touching different
	// groups execute fully in parallel and commits run per shard on a
	// background scheduler. Values <= 1 select the single-shard engine,
	// which is bit-identical in byte counts and virtual time to the
	// unsharded design. See DESIGN.md §9.
	Shards int
	// WriteBehind runs the background group-commit scheduler even on a
	// single-shard array: writes are acknowledged at log-append and
	// CommitEvery / log-pressure parity folds run off the write critical
	// path. Background fold failures surface on the next Write, Flush, or
	// Close. Multi-shard arrays always run the scheduler.
	WriteBehind bool
	// DirtyWindowStripes bounds the write-behind dirty window: a shard
	// with at least this many pending log stripes blocks further writes
	// to it until the background fold drains them. Zero leaves the window
	// bounded only by log capacity.
	DirtyWindowStripes int
}

// Stats mirrors the array's activity counters; see the field names for
// semantics.
type Stats = core.Stats

// Array is an EPLog array: the public handle over the elastic parity
// logging engine, with optional persistent metadata checkpointing. An
// Array is safe for concurrent use: the engine partitions its state into
// per-stripe-group shards with their own locks (Config.Shards; requests
// touching different shards run in parallel, each request's expensive
// phases on a worker pool sized by Config.Workers), and the checkpoint
// bookkeeping below is guarded by chkptMu. Lock order is chkptMu before
// the engine's shard locks; nothing ever takes them in the opposite
// order.
type Array struct {
	e     *core.EPLog
	cfg   Config
	csize int
	sink  *obs.Sink // nil unless cfg.TraceEvents > 0 or cfg.Spans > 0

	chkptMu    sync.Mutex
	vol        *metadata.Volume
	sinceChkpt int
}

// New creates a fresh EPLog array over the main-array devices and one log
// device per parity dimension. All devices must share a chunk size.
func New(devs, logDevs []BlockDevice, cfg Config) (*Array, error) {
	sink := newSink(cfg)
	e, err := core.New(instrument(sink, "main", devs), instrument(sink, "log", logDevs), coreConfig(cfg, sink))
	if err != nil {
		return nil, err
	}
	return &Array{e: e, cfg: cfg, csize: e.ChunkSize(), sink: sink}, nil
}

func newSink(cfg Config) *obs.Sink {
	if cfg.TraceEvents <= 0 && cfg.Spans <= 0 {
		return nil
	}
	events := cfg.TraceEvents
	if events <= 0 {
		events = DefaultTraceEvents
	}
	sink := obs.NewSink(events)
	if cfg.Spans > 0 {
		sink.EnableSpans(obs.SpanConfig{Trees: cfg.Spans, Sampling: cfg.SpanSampling})
	}
	return sink
}

func coreConfig(cfg Config, sink *obs.Sink) core.Config {
	return core.Config{
		Obs:                 sink,
		K:                   cfg.K,
		Stripes:             cfg.Stripes,
		DeviceBufferChunks:  cfg.DeviceBufferChunks,
		HotColdGrouping:     cfg.HotColdGrouping,
		StripeBufferStripes: cfg.StripeBufferStripes,
		CommitEvery:         cfg.CommitEvery,
		TrimOnCommit:        cfg.TrimOnCommit,
		CommitGuardChunks:   cfg.CommitGuardChunks,
		Workers:             cfg.Workers,
		Shards:              cfg.Shards,
		WriteBehind:         cfg.WriteBehind,
		DirtyWindowStripes:  cfg.DirtyWindowStripes,
	}
}

// Chunks returns the logical capacity in chunks (Stripes x K).
func (a *Array) Chunks() int64 { return a.e.Chunks() }

// ChunkSize returns the chunk size in bytes.
func (a *Array) ChunkSize() int { return a.csize }

// Stats returns a snapshot of the activity counters.
func (a *Array) Stats() Stats { return a.e.Stats() }

// Write stores len(p)/ChunkSize chunks at logical chunk lba. p must be a
// positive multiple of the chunk size.
func (a *Array) Write(lba int64, p []byte) error {
	_, err := a.WriteAt(0, lba, p)
	return err
}

// WriteAt is Write with virtual-time accounting: the request starts no
// earlier than start and the returned time is its completion.
func (a *Array) WriteAt(start float64, lba int64, p []byte) (float64, error) {
	end, err := a.e.WriteChunks(start, lba, p)
	if err != nil {
		return end, err
	}
	if a.cfg.CheckpointEvery > 0 {
		a.chkptMu.Lock()
		defer a.chkptMu.Unlock()
		if a.vol == nil {
			return end, nil
		}
		a.sinceChkpt++
		if a.sinceChkpt >= a.cfg.CheckpointEvery {
			a.sinceChkpt = 0
			if err := a.checkpoint(false); err != nil {
				return end, fmt.Errorf("eplog: auto checkpoint: %w", err)
			}
		}
	}
	return end, nil
}

// Read fills p with len(p)/ChunkSize chunks starting at lba, reconstructing
// degraded chunks when devices have failed.
func (a *Array) Read(lba int64, p []byte) error {
	_, err := a.e.ReadChunks(0, lba, p)
	return err
}

// ReadAt is Read with virtual-time accounting.
func (a *Array) ReadAt(start float64, lba int64, p []byte) (float64, error) {
	return a.e.ReadChunks(start, lba, p)
}

// Flush drains any buffered writes to the devices without committing
// parity.
func (a *Array) Flush() error { return a.e.Flush() }

// Close shuts the engine down cleanly. If the background group-commit
// scheduler is running (Config.Shards > 1 or Config.WriteBehind), Close
// drains it: every shard with a scheduled-but-unrun parity fold gets a
// final commit, so no acknowledged write is left parity-pending, and the
// first background fold error not yet reported by a Write or Flush is
// returned instead of being dropped. It does not flush the RAM buffers
// (call Flush first for that). Close is idempotent and safe for
// concurrent use; every call returns the same error.
func (a *Array) Close() error { return a.e.Close() }

// Commit performs a parity commit: on-array parity is recomputed from the
// latest data, superseded versions and all log space are released. Log
// devices are not read.
func (a *Array) Commit() error { return a.e.Commit() }

// PendingLogStripes reports the number of log stripes awaiting commit.
func (a *Array) PendingLogStripes() int { return a.e.PendingLogStripes() }

// VerifyReport summarizes a consistency scrub; see Array.Verify.
type VerifyReport = core.VerifyReport

// Verify scrubs the array, checking every committed stripe's parity
// against its data and every pending log stripe's log chunks against its
// member versions. Nothing is modified. Call Flush first to include
// buffered writes.
func (a *Array) Verify() (*VerifyReport, error) { return a.e.Verify() }

// Rebuild reconstructs the contents of failed main-array device devIdx
// onto the replacement and swaps it in. With observability enabled the
// replacement continues the failed device's metric series.
func (a *Array) Rebuild(devIdx int, replacement BlockDevice) error {
	if a.sink != nil {
		return a.e.Rebuild(devIdx, instrumentOne(a.sink, "main", devIdx, replacement))
	}
	return a.e.Rebuild(devIdx, replacement)
}

// RecoverLogDevice replaces failed log device dim: a parity commit makes
// the lost log chunks unnecessary, then the replacement is swapped in.
func (a *Array) RecoverLogDevice(dim int, replacement BlockDevice) error {
	if a.sink != nil {
		return a.e.RecoverLogDevice(dim, instrumentOne(a.sink, "log", dim, replacement))
	}
	return a.e.RecoverLogDevice(dim, replacement)
}

// ErrNoMetadataVolume is returned by checkpoint operations before
// AttachMetadataVolume.
var ErrNoMetadataVolume = errors.New("eplog: no metadata volume attached")

// FormatMetadataVolume initializes dev as a fresh metadata volume and
// attaches it. fullAreaChunks sizes each of the two full-checkpoint
// sub-areas; it must fit a complete metadata snapshot.
func (a *Array) FormatMetadataVolume(dev BlockDevice, fullAreaChunks int64) error {
	vol, err := metadata.Format(dev, fullAreaChunks)
	if err != nil {
		return err
	}
	a.chkptMu.Lock()
	defer a.chkptMu.Unlock()
	a.vol = vol
	return nil
}

// Checkpoint persists metadata to the attached volume: a full checkpoint
// when full is true (written to the alternate sub-area, crash-safely), or
// an incremental checkpoint holding only the metadata dirtied since the
// previous checkpoint.
func (a *Array) Checkpoint(full bool) error {
	a.chkptMu.Lock()
	defer a.chkptMu.Unlock()
	return a.checkpoint(full)
}

// checkpoint implements Checkpoint with chkptMu held.
func (a *Array) checkpoint(full bool) error {
	if a.vol == nil {
		return ErrNoMetadataVolume
	}
	if full {
		return a.vol.WriteFull(a.e.Snapshot())
	}
	if !a.vol.HasCheckpoint() {
		return fmt.Errorf("eplog: incremental checkpoint requires a prior full checkpoint")
	}
	return a.vol.WriteIncremental(a.e.DirtyDelta())
}

// Open rebuilds an EPLog array from the newest checkpoint on a metadata
// volume, over the same main-array and log devices the checkpoint
// describes. Buffered state is not part of checkpoints, so cfg's buffers
// start empty.
func Open(devs, logDevs []BlockDevice, cfg Config, metaDev BlockDevice) (*Array, error) {
	vol, err := metadata.Open(metaDev)
	if err != nil {
		return nil, err
	}
	snap, err := vol.Load()
	if err != nil {
		return nil, err
	}
	sink := newSink(cfg)
	e, err := core.Restore(instrument(sink, "main", devs), instrument(sink, "log", logDevs), coreConfig(cfg, sink), snap)
	if err != nil {
		return nil, err
	}
	return &Array{e: e, vol: vol, cfg: cfg, csize: e.ChunkSize(), sink: sink}, nil
}
