// Benchmarks regenerating each table and figure of the paper's evaluation
// (Section V and Figure 6) at a reduced scale, plus ablations of the design
// choices called out in DESIGN.md and wall-clock microbenchmarks of the
// three schemes' write paths. Custom metrics carry the experiment outputs:
// e.g. BenchmarkExp1 reports EPLog's write reduction versus MD as
// "reduction-pct". For full paper-style tables, run cmd/eplogbench.
package eplog_test

import (
	"math/rand"
	"testing"

	"github.com/eplog/eplog"
	"github.com/eplog/eplog/internal/experiments"
	"github.com/eplog/eplog/internal/reliability"
	"github.com/eplog/eplog/internal/ssd"
	"github.com/eplog/eplog/internal/trace"
)

// benchScale trades fidelity for benchmark runtime; cmd/eplogbench runs
// the same drivers at larger scales.
const benchScale = 512

func BenchmarkFig6_MTTDL(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		p := reliability.Params{
			N: 10, M: 2, LambdaSSD: 0.25, Alpha: 0.5,
			LambdaHDD: 0.25, MuSSD: 1e4, MuHDD: 1e4,
		}
		ep, err := reliability.EPLogMTTDL(p)
		if err != nil {
			b.Fatal(err)
		}
		conv, err := reliability.ConventionalMTTDL(p)
		if err != nil {
			b.Fatal(err)
		}
		gain = ep / conv
	}
	b.ReportMetric(gain, "mttdl-gain-x")
}

func BenchmarkTableI_TraceGen(b *testing.B) {
	var writes int64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		writes = rows[0].Stats.Writes
	}
	b.ReportMetric(float64(writes), "fin-writes")
}

// exp1Reduction runs one (6+2) FIN replay pair and returns EPLog's write
// reduction versus MD in percent.
func exp1Pair(b *testing.B, scheme experiments.Scheme) int64 {
	b.Helper()
	p, err := trace.LookupProfile("FIN")
	if err != nil {
		b.Fatal(err)
	}
	tr := p.Scaled(benchScale).Generate(experiments.ChunkSize)
	res, err := experiments.Run(experiments.RunConfig{
		Setting: experiments.DefaultSetting(), Scheme: scheme, Trace: tr,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.SSDWriteBytes
}

func BenchmarkExp1_WriteTraffic(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		md := exp1Pair(b, experiments.MD)
		ep := exp1Pair(b, experiments.EPLog)
		reduction = (1 - float64(ep)/float64(md)) * 100
	}
	b.ReportMetric(reduction, "reduction-pct")
}

func BenchmarkExp2_GC(b *testing.B) {
	var mdGC, epGC float64
	for i := 0; i < b.N; i++ {
		p, err := trace.LookupProfile("FIN")
		if err != nil {
			b.Fatal(err)
		}
		tr := p.Scaled(benchScale).Generate(experiments.ChunkSize)
		for _, s := range []experiments.Scheme{experiments.MD, experiments.EPLog} {
			res, err := experiments.Run(experiments.RunConfig{
				Setting: experiments.DefaultSetting(), Scheme: s, Trace: tr,
				UseSSDSim: true, UpdateHeadroom: 0.5, TrimOnCommit: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if s == experiments.MD {
				mdGC = res.GCPerSSD
			} else {
				epGC = res.GCPerSSD
			}
		}
	}
	b.ReportMetric(mdGC, "md-gc/ssd")
	b.ReportMetric(epGC, "eplog-gc/ssd")
}

func BenchmarkExp3_Caching(b *testing.B) {
	var logReduction float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Exp3Caching(benchScale, []int{0, 64})
		if err != nil {
			b.Fatal(err)
		}
		logReduction = (1 - float64(rows[1].LogBytes)/float64(rows[0].LogBytes)) * 100
	}
	b.ReportMetric(logReduction, "fin-log-reduction-pct")
}

func BenchmarkExp4_Commit(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		p, err := trace.LookupProfile("FIN")
		if err != nil {
			b.Fatal(err)
		}
		tr := p.Scaled(benchScale).Generate(experiments.ChunkSize)
		var none, end int64
		for _, commitEnd := range []bool{false, true} {
			res, err := experiments.Run(experiments.RunConfig{
				Setting: experiments.DefaultSetting(), Scheme: experiments.EPLog,
				Trace: tr, CommitAtEnd: commitEnd,
			})
			if err != nil {
				b.Fatal(err)
			}
			if commitEnd {
				end = res.SSDWriteBytes
			} else {
				none = res.SSDWriteBytes
			}
		}
		overhead = (float64(end)/float64(none) - 1) * 100
	}
	b.ReportMetric(overhead, "commit-end-overhead-pct")
}

func BenchmarkExp5_Throughput(b *testing.B) {
	var mdK, plK, epK float64
	for i := 0; i < b.N; i++ {
		p, err := trace.LookupProfile("FIN")
		if err != nil {
			b.Fatal(err)
		}
		tr := p.Scaled(benchScale).Generate(experiments.ChunkSize)
		for _, s := range []experiments.Scheme{experiments.MD, experiments.PL, experiments.EPLog} {
			res, err := experiments.Run(experiments.RunConfig{
				Setting: experiments.DefaultSetting(), Scheme: s, Trace: tr,
				UseSSDSim: true, Timing: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			switch s {
			case experiments.MD:
				mdK = res.KIOPS
			case experiments.PL:
				plK = res.KIOPS
			case experiments.EPLog:
				epK = res.KIOPS
			}
		}
	}
	b.ReportMetric(mdK, "md-kiops")
	b.ReportMetric(plK, "pl-kiops")
	b.ReportMetric(epK, "eplog-kiops")
}

func BenchmarkExp6_Metadata(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Exp6Metadata(128)
		if err != nil {
			b.Fatal(err)
		}
		overhead = res.CreateOverheadPct()
	}
	b.ReportMetric(overhead, "full-chkpt-overhead-pct")
}

// BenchmarkAblation_Trim quantifies the TRIM-on-commit extension: flash
// pages moved by GC with and without TRIM under space pressure.
func BenchmarkAblation_Trim(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		p, err := trace.LookupProfile("FIN")
		if err != nil {
			b.Fatal(err)
		}
		tr := p.Scaled(benchScale).Generate(experiments.ChunkSize)
		for _, trim := range []bool{false, true} {
			res, err := experiments.Run(experiments.RunConfig{
				Setting: experiments.DefaultSetting(), Scheme: experiments.EPLog,
				Trace: tr, UseSSDSim: true, UpdateHeadroom: 0.35, TrimOnCommit: trim,
			})
			if err != nil {
				b.Fatal(err)
			}
			if trim {
				with = res.PagesMovedPerSSD
			} else {
				without = res.PagesMovedPerSSD
			}
		}
	}
	b.ReportMetric(without, "moved-no-trim")
	b.ReportMetric(with, "moved-trim")
}

// BenchmarkAblation_ElasticVsPerStripe compares log-chunk volume between
// elastic logging (EPLog) and per-stripe logging (PL) on the same trace:
// the paper reports EPLog writes 8-15% fewer log chunks.
func BenchmarkAblation_ElasticVsPerStripe(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		p, err := trace.LookupProfile("FIN")
		if err != nil {
			b.Fatal(err)
		}
		tr := p.Scaled(benchScale).Generate(experiments.ChunkSize)
		var pl, ep int64
		for _, s := range []experiments.Scheme{experiments.PL, experiments.EPLog} {
			res, err := experiments.Run(experiments.RunConfig{
				Setting: experiments.DefaultSetting(), Scheme: s, Trace: tr,
			})
			if err != nil {
				b.Fatal(err)
			}
			if s == experiments.PL {
				pl = res.LogWriteBytes
			} else {
				ep = res.LogWriteBytes
			}
		}
		saving = (1 - float64(ep)/float64(pl)) * 100
	}
	b.ReportMetric(saving, "log-saving-pct")
}

// Wall-clock write-path microbenchmarks of the three schemes on RAM
// devices: the CPU cost per 4KB update.

func benchDevices(n int, chunks int64) []eplog.BlockDevice {
	devs := make([]eplog.BlockDevice, n)
	for i := range devs {
		devs[i] = eplog.NewMemDevice(chunks, 4096)
	}
	return devs
}

func BenchmarkWritePath_EPLog(b *testing.B) {
	a, err := eplog.New(benchDevices(8, 4096),
		[]eplog.BlockDevice{eplog.NewMemDevice(1<<20, 4096), eplog.NewMemDevice(1<<20, 4096)},
		eplog.Config{K: 6, Stripes: 1024})
	if err != nil {
		b.Fatal(err)
	}
	benchWrites(b, a)
}

func BenchmarkWritePath_RAID(b *testing.B) {
	a, err := eplog.NewRAID(benchDevices(8, 1024), 6, 1024)
	if err != nil {
		b.Fatal(err)
	}
	benchWrites(b, a)
}

func BenchmarkWritePath_PL(b *testing.B) {
	a, err := eplog.NewParityLog(benchDevices(8, 1024),
		[]eplog.BlockDevice{eplog.NewMemDevice(1<<20, 4096), eplog.NewMemDevice(1<<20, 4096)},
		6, 1024)
	if err != nil {
		b.Fatal(err)
	}
	benchWrites(b, a)
}

func benchWrites(b *testing.B, s eplog.Store) {
	b.Helper()
	data := make([]byte, s.Chunks()*int64(s.ChunkSize()))
	rand.New(rand.NewSource(1)).Read(data[:4096])
	if err := s.Write(0, data); err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	buf := data[:4096]
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(int64(r.Intn(int(s.Chunks()))), buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_HotColdGrouping compares device-buffer absorption with
// FIFO versus coldest-first eviction on the FIN workload. Note the
// direction: under FIN's recency-driven reuse FIFO wins (recently inserted
// chunks are the likeliest to be re-hit), whereas under statically skewed
// hotness coldest-first wins (see TestHotColdGroupingKeepsHotChunks) —
// which is why the paper's suggested hot/cold grouping is an option, not a
// default.
func BenchmarkAblation_HotColdGrouping(b *testing.B) {
	var fifo, hotcold int64
	for i := 0; i < b.N; i++ {
		p, err := trace.LookupProfile("FIN")
		if err != nil {
			b.Fatal(err)
		}
		tr := p.Scaled(benchScale).Generate(experiments.ChunkSize)
		for _, hc := range []bool{false, true} {
			res, err := experiments.Run(experiments.RunConfig{
				Setting: experiments.DefaultSetting(), Scheme: experiments.EPLog,
				Trace: tr, DeviceBufferChunks: 16, HotColdGrouping: hc,
			})
			if err != nil {
				b.Fatal(err)
			}
			if hc {
				hotcold = res.SSDWriteBytes
			} else {
				fifo = res.SSDWriteBytes
			}
		}
	}
	b.ReportMetric(float64(fifo)/1e6, "fifo-write-MB")
	b.ReportMetric(float64(hotcold)/1e6, "hotcold-write-MB")
}

// BenchmarkAblation_WearLeveling measures the erase-count spread of a
// skewed workload with static wear leveling off and on.
func BenchmarkAblation_WearLeveling(b *testing.B) {
	var spreadOff, spreadOn float64
	for i := 0; i < b.N; i++ {
		for _, threshold := range []int{0, 8} {
			params := ssd.DefaultParams(8 << 20)
			params.WearLevelThreshold = threshold
			d, err := ssd.New(params)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, params.PageSize)
			n := int(d.Chunks())
			for c := 0; c < n; c++ {
				if err := d.WriteChunk(int64(c), buf); err != nil {
					b.Fatal(err)
				}
			}
			for w := 0; w < 10*n; w++ {
				if err := d.WriteChunk(int64(w%64), buf); err != nil {
					b.Fatal(err)
				}
			}
			if threshold == 0 {
				spreadOff = float64(d.EraseSpread())
			} else {
				spreadOn = float64(d.EraseSpread())
			}
		}
	}
	b.ReportMetric(spreadOff, "spread-no-wl")
	b.ReportMetric(spreadOn, "spread-wl")
}
