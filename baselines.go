package eplog

import (
	"github.com/eplog/eplog/internal/paritylog"
	"github.com/eplog/eplog/internal/raid"
)

// Store is the interface shared by EPLog and the two baseline schemes the
// paper evaluates against, so applications and benchmarks can swap them.
// All three implementations are safe for concurrent use: each serializes
// requests on an internal mutex, keeping comparisons apples-to-apples.
type Store interface {
	Write(lba int64, p []byte) error
	Read(lba int64, p []byte) error
	Commit() error
	Chunks() int64
	ChunkSize() int
}

var (
	_ Store = (*Array)(nil)
	_ Store = (*RAIDArray)(nil)
	_ Store = (*ParityLogArray)(nil)
)

// RAIDArray is conventional software RAID (the paper's MD baseline):
// parity lives on the main array and every partial-stripe write updates it
// immediately via read-modify-write (single parity) or reconstruct-write.
type RAIDArray struct {
	a *raid.Array
}

// NewRAID builds a conventional k-of-n RAID array over devs with the given
// stripe count; n-k parity chunks per stripe.
func NewRAID(devs []BlockDevice, k int, stripes int64) (*RAIDArray, error) {
	a, err := raid.New(toInternal(devs), k, stripes)
	if err != nil {
		return nil, err
	}
	return &RAIDArray{a: a}, nil
}

// Write implements Store.
func (r *RAIDArray) Write(lba int64, p []byte) error {
	_, err := r.a.WriteChunks(0, lba, p)
	return err
}

// WriteAt is Write with virtual-time accounting.
func (r *RAIDArray) WriteAt(start float64, lba int64, p []byte) (float64, error) {
	return r.a.WriteChunks(start, lba, p)
}

// Read implements Store.
func (r *RAIDArray) Read(lba int64, p []byte) error {
	_, err := r.a.ReadChunks(0, lba, p)
	return err
}

// Commit implements Store (a no-op: parity is always current).
func (r *RAIDArray) Commit() error { return r.a.Commit() }

// Chunks implements Store.
func (r *RAIDArray) Chunks() int64 { return r.a.Chunks() }

// ChunkSize implements Store.
func (r *RAIDArray) ChunkSize() int { return r.a.ChunkSize() }

// Rebuild reconstructs failed device devIdx onto a replacement.
func (r *RAIDArray) Rebuild(devIdx int, replacement BlockDevice) error {
	return r.a.Rebuild(devIdx, replacement)
}

// Verify scrubs the array, returning the stripes whose parity does not
// match their data.
func (r *RAIDArray) Verify() ([]int64, error) { return r.a.Verify() }

// ParityLogArray is the original parity-logging baseline (PL): in-place
// data updates whose parity deltas are appended to per-region logs on
// dedicated log devices, with pre-reads of the old data on every write.
type ParityLogArray struct {
	a *paritylog.Array
}

// NewParityLog builds a parity-logging array: k data chunks per stripe
// across devs, one log device per parity dimension.
func NewParityLog(devs, logDevs []BlockDevice, k int, stripes int64) (*ParityLogArray, error) {
	a, err := paritylog.New(toInternal(devs), toInternal(logDevs), k, stripes)
	if err != nil {
		return nil, err
	}
	return &ParityLogArray{a: a}, nil
}

// Write implements Store.
func (p *ParityLogArray) Write(lba int64, data []byte) error {
	_, err := p.a.WriteChunks(0, lba, data)
	return err
}

// WriteAt is Write with virtual-time accounting.
func (p *ParityLogArray) WriteAt(start float64, lba int64, data []byte) (float64, error) {
	return p.a.WriteChunks(start, lba, data)
}

// Read implements Store.
func (p *ParityLogArray) Read(lba int64, data []byte) error {
	_, err := p.a.ReadChunks(0, lba, data)
	return err
}

// Commit implements Store: it reintegrates all logged parity deltas
// (reading the log devices, unlike EPLog).
func (p *ParityLogArray) Commit() error { return p.a.Commit() }

// Chunks implements Store.
func (p *ParityLogArray) Chunks() int64 { return p.a.Chunks() }

// ChunkSize implements Store.
func (p *ParityLogArray) ChunkSize() int { return p.a.ChunkSize() }

// Rebuild reconstructs failed main-array device devIdx onto a replacement.
func (p *ParityLogArray) Rebuild(devIdx int, replacement BlockDevice) error {
	return p.a.Rebuild(devIdx, replacement)
}

// Verify scrubs the array against its effective parity (on-array parity
// plus outstanding log deltas), returning the inconsistent stripes.
func (p *ParityLogArray) Verify() ([]int64, error) { return p.a.Verify() }
