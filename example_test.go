package eplog_test

import (
	"fmt"

	"github.com/eplog/eplog"
)

// Build a (4+1)-RAID-5-style EPLog array over in-memory devices, write a
// chunk through the elastic-logging path, and commit parity.
func ExampleNew() {
	devs := make([]eplog.BlockDevice, 5)
	for i := range devs {
		devs[i] = eplog.NewMemDevice(64, 4096)
	}
	logs := []eplog.BlockDevice{eplog.NewMemDevice(256, 4096)}
	arr, err := eplog.New(devs, logs, eplog.Config{K: 4, Stripes: 16})
	if err != nil {
		panic(err)
	}

	data := make([]byte, 4096)
	copy(data, "hello eplog")
	if err := arr.Write(7, data); err != nil {
		panic(err)
	}
	fmt.Println("pending log stripes:", arr.PendingLogStripes())
	if err := arr.Commit(); err != nil {
		panic(err)
	}
	fmt.Println("pending log stripes after commit:", arr.PendingLogStripes())
	// Output:
	// pending log stripes: 1
	// pending log stripes after commit: 0
}

// Tolerate a device failure: degraded reads keep working, and Rebuild
// restores full redundancy onto a replacement device.
func ExampleArray_Rebuild() {
	devs := make([]eplog.BlockDevice, 5)
	faulty := make([]*eplog.FaultyDevice, 5)
	for i := range devs {
		f := eplog.NewFaultyDevice(eplog.NewMemDevice(64, 4096))
		faulty[i] = f
		devs[i] = f
	}
	logs := []eplog.BlockDevice{eplog.NewMemDevice(256, 4096)}
	arr, err := eplog.New(devs, logs, eplog.Config{K: 4, Stripes: 16})
	if err != nil {
		panic(err)
	}
	data := make([]byte, 4096)
	copy(data, "survives failures")
	if err := arr.Write(3, data); err != nil {
		panic(err)
	}

	faulty[0].Fail() // whichever device — the stripe decodes around it
	got := make([]byte, 4096)
	if err := arr.Read(3, got); err != nil {
		panic(err)
	}
	fmt.Printf("degraded read: %s\n", got[:17])

	if err := arr.Rebuild(0, eplog.NewMemDevice(64, 4096)); err != nil {
		panic(err)
	}
	rep, err := arr.Verify()
	if err != nil {
		panic(err)
	}
	fmt.Println("consistent after rebuild:", rep.OK())
	// Output:
	// degraded read: survives failures
	// consistent after rebuild: true
}

// Use the byte-granular adapter when an upper layer wants io.ReaderAt /
// io.WriterAt semantics instead of chunk addressing.
func ExampleNewIO() {
	devs := make([]eplog.BlockDevice, 5)
	for i := range devs {
		devs[i] = eplog.NewMemDevice(64, 4096)
	}
	logs := []eplog.BlockDevice{eplog.NewMemDevice(256, 4096)}
	arr, err := eplog.New(devs, logs, eplog.Config{K: 4, Stripes: 16})
	if err != nil {
		panic(err)
	}
	bio := eplog.NewIO(arr)

	msg := []byte("byte-addressed, unaligned, no problem")
	if _, err := bio.WriteAt(msg, 5000); err != nil { // mid-chunk offset
		panic(err)
	}
	got := make([]byte, len(msg))
	if _, err := bio.ReadAt(got, 5000); err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", got)
	// Output:
	// byte-addressed, unaligned, no problem
}
