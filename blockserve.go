package eplog

import (
	"time"

	"github.com/eplog/eplog/internal/server"
)

// BlockServer is a running network block service over an Array; see
// Array.ServeBlocks. It speaks the wire protocol (internal/wire): READ,
// WRITE, FLUSH, and STAT frames with per-request IDs, pipelined per
// connection with out-of-order completion, writes batched across
// connections before entering the engine, and socket-level backpressure
// tied to log occupancy.
type BlockServer = server.Server

// BlockServeOptions tunes ServeBlocks. The zero value selects the
// defaults.
type BlockServeOptions struct {
	// MaxPayload bounds per-frame payloads in bytes (0 selects 1 MiB).
	MaxPayload int
	// BatchMax bounds how many write/flush requests coalesce into one
	// engine batch (0 selects 64).
	BatchMax int
	// QueueDepth bounds in-flight requests per connection (0 selects 128).
	QueueDepth int
	// ReadWorkers sizes the read-batch executor pool (0 selects 4).
	ReadWorkers int
	// WriteQueue is the capacity of the write/flush dispatch queue
	// between connection readers and the write dispatcher (0 selects
	// 1024).
	WriteQueue int
	// ReadQueue is the capacity of the read/stats dispatch queue between
	// connection readers and the read dispatcher (0 selects 1024).
	ReadQueue int
	// ReadBatchQueue is the capacity of the batch hand-off queue between
	// the read dispatcher and the executor pool (0 selects ReadWorkers).
	ReadBatchQueue int
	// WritevMax bounds how many completed response frames one connection
	// writer coalesces into a single vectored write (0 selects 64).
	WritevMax int
	// BatchAge bounds the dispatchers' adaptive batch linger: with more
	// requests in flight than a batch holds, collection continues up to
	// BatchAge before entering the engine (0 selects 200µs; negative
	// disables lingering).
	BatchAge time.Duration
	// HighWater and LowWater set the backpressure gate thresholds on the
	// engine's write-pressure signal (0 selects 0.85 / 0.70).
	HighWater float64
	LowWater  float64
	// DrainTimeout bounds the graceful drain in Close (0 selects 5s).
	DrainTimeout time.Duration
}

// ServeBlocks starts a network block service for this array on addr
// (host:port; use ":0" for an ephemeral port and read it back with Addr).
// The server shares the array's observability sink, publishing net.*
// metrics and "net"/"net-batch" spans next to the engine's own. Close the
// server (which drains in-flight requests) before closing the Array; the
// server never closes the store itself.
func (a *Array) ServeBlocks(addr string, opts BlockServeOptions) (*BlockServer, error) {
	return server.Listen(addr, a.e, server.Options{
		MaxPayload:     opts.MaxPayload,
		BatchMax:       opts.BatchMax,
		QueueDepth:     opts.QueueDepth,
		ReadWorkers:    opts.ReadWorkers,
		WriteQueue:     opts.WriteQueue,
		ReadQueue:      opts.ReadQueue,
		ReadBatchQueue: opts.ReadBatchQueue,
		WritevMax:      opts.WritevMax,
		BatchAge:       opts.BatchAge,
		HighWater:      opts.HighWater,
		LowWater:       opts.LowWater,
		DrainTimeout:   opts.DrainTimeout,
		Sink:           a.sink,
		SpanShard:      a.e.NumShards(),
	})
}
